package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// On-disk formats (specified in docs/PROTOCOL.md):
//
// Segment file:  "SBWL" | u32 version (1) | u64 sequence | records...
// Record:        u32 length | u32 crc32c | u8 type | payload
//                (length = 1 + len(payload); crc over type||payload)
// Snapshot file: "SBSP" | u32 version (1) | u64 coversSeq | u32 blobLen |
//                blob | u32 crc32c(blob)
//
// All integers big-endian, matching the rest of the repository's codecs.

const (
	segmentMagic      = "SBWL"
	snapshotMagic     = "SBSP"
	formatVersion     = 1
	segmentHeaderSize = 4 + 4 + 8
	recordHeaderSize  = 4 + 4
	// MaxRecordSize bounds one record's length field; anything larger is
	// treated as corruption rather than allocated.
	MaxRecordSize = 64 << 20
)

// castagnoli is the CRC-32C table shared by records and snapshots.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendRecord appends one encoded record to buf.
func appendRecord(buf []byte, typ byte, payload []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(1+len(payload)))
	crc := crc32.Update(crc32.Checksum([]byte{typ}, castagnoli), castagnoli, payload)
	buf = binary.BigEndian.AppendUint32(buf, crc)
	buf = append(buf, typ)
	return append(buf, payload...)
}

// segmentInfo is one scanned segment file.
type segmentInfo struct {
	seq  uint64
	path string
	size int64
}

// snapshotInfo is one scanned snapshot file.
type snapshotInfo struct {
	seq  uint64
	path string
	size int64
}

// segmentWriter is the committer's handle on the open segment.
type segmentWriter struct {
	seq  uint64
	path string
	f    *os.File
	bw   *bufio.Writer
	size int64
}

// createSegment creates (exclusively) and headers a new segment file.
func createSegment(dir string, seq uint64) (*segmentWriter, error) {
	path := segmentPath(dir, seq)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create segment: %w", err)
	}
	w := &segmentWriter{seq: seq, path: path, f: f, bw: bufio.NewWriterSize(f, 1<<16)}
	var hdr []byte
	hdr = append(hdr, segmentMagic...)
	hdr = binary.BigEndian.AppendUint32(hdr, formatVersion)
	hdr = binary.BigEndian.AppendUint64(hdr, seq)
	if _, err := w.bw.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	w.size = segmentHeaderSize
	return w, nil
}

// write appends encoded record bytes to the segment buffer.
func (w *segmentWriter) write(rec []byte) error {
	if _, err := w.bw.Write(rec); err != nil {
		return err
	}
	w.size += int64(len(rec))
	return nil
}

// scan inventories the data directory's segments and snapshots.
func (l *Log) scan() error {
	entries, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: scan dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		info, err := e.Info()
		if err != nil {
			continue
		}
		if seq, ok := parseName(name, "wal-", ".log"); ok {
			l.segs = append(l.segs, segmentInfo{seq: seq, path: segmentPath(l.opts.Dir, seq), size: info.Size()})
			l.size.Add(info.Size())
			continue
		}
		if seq, ok := parseName(name, "snap-", ".snap"); ok {
			l.snaps = append(l.snaps, snapshotInfo{seq: seq, path: snapshotPath(l.opts.Dir, seq), size: info.Size()})
			l.size.Add(info.Size())
		}
		// Anything else (including interrupted snap-*.snap.tmp writes) is
		// ignored; stale tmp files are harmless and overwritten by name reuse.
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].seq < l.segs[j].seq })
	sort.Slice(l.snaps, func(i, j int) bool { return l.snaps[i].seq < l.snaps[j].seq })
	return nil
}

// parseName extracts the 16-hex-digit sequence from a prefixed file name.
func parseName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if len(hex) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// LoadSnapshot returns the newest snapshot whose integrity checks pass, or
// nil if no snapshot exists. Corrupt snapshots are skipped in favour of
// older ones (recovery then replays the correspondingly longer log tail —
// if it survived compaction; Replay verifies that). If snapshot files exist
// but none validates, LoadSnapshot fails: compaction has already deleted
// the history the snapshot superseded, so starting "fresh" would silently
// discard every durably acknowledged record — an operator must delete the
// snapshot files to accept that loss explicitly. Call before Replay: the
// loaded snapshot decides which segments Replay visits.
func (l *Log) LoadSnapshot() ([]byte, error) {
	var lastErr error
	for i := len(l.snaps) - 1; i >= 0; i-- {
		blob, err := readSnapshotFile(l.snaps[i].path, l.snaps[i].seq)
		if err != nil {
			lastErr = err
			continue
		}
		l.snapSeq = l.snaps[i].seq
		return blob, nil
	}
	if lastErr != nil {
		return nil, fmt.Errorf("wal: %d snapshot file(s) present but none valid (%w) — refusing to start empty; delete them to accept the loss", len(l.snaps), lastErr)
	}
	return nil, nil
}

// Replay streams every record not covered by the loaded snapshot, oldest
// first, to fn; fn errors abort the replay. It tolerates a torn or corrupt
// record by stopping there: the records before it are the recoverable
// history (a crash can only tear the tail, and everything after a tear was
// never acknowledged durable). It returns how many records were applied.
func (l *Log) Replay(fn func(typ byte, payload []byte) error) (int, error) {
	if l.started {
		return 0, errors.New("wal: replay after start")
	}
	// The replayable segments must form an unbroken chain from the snapshot's
	// coverage point (or from sequence 1 on a snapshotless log — fresh logs
	// always begin there, and only compaction, which implies a snapshot, may
	// remove a head segment). A hole means deleted or lost history; replaying
	// over it would silently produce a state missing those mutations.
	expect := l.snapSeq
	if expect == 0 {
		expect = 1
	}
	for _, seg := range l.segs {
		if seg.seq < l.snapSeq {
			continue
		}
		if seg.seq != expect {
			return 0, fmt.Errorf("wal: segment chain broken: found segment %016x, expected %016x — refusing to replay over missing history", seg.seq, expect)
		}
		expect++
	}
	l.replayed = true
	total := 0
	for _, seg := range l.segs {
		if seg.seq < l.snapSeq {
			continue
		}
		n, valid, intact, err := replaySegmentFile(seg.path, seg.seq, fn)
		total += n
		if err != nil {
			return total, err
		}
		if !intact {
			// A torn record ends the recoverable history; Start truncates the
			// tear away so new records never hide behind it.
			l.tornSeq = seg.seq
			l.tornValid = valid
			break
		}
	}
	return total, nil
}

// replaySegmentFile opens and replays one segment file.
func replaySegmentFile(path string, wantSeq uint64, fn func(typ byte, payload []byte) error) (int, int64, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: open segment: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: stat segment: %w", err)
	}
	return replaySegment(bufio.NewReaderSize(f, 1<<16), st.Size(), wantSeq, fn)
}

// replaySegment reads a segment stream of the given total size: header, then
// records until the stream ends or a record fails its checks. A malformed
// header, short read, implausible length or CRC mismatch is a torn tail
// (intact=false), not an error; only fn's own failures are errors. valid is
// the byte length of the header-plus-intact-records prefix (the truncation
// point that repairs a torn segment).
func replaySegment(r io.Reader, size int64, wantSeq uint64, fn func(typ byte, payload []byte) error) (n int, valid int64, intact bool, err error) {
	var hdr [segmentHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, false, nil
	}
	if string(hdr[:4]) != segmentMagic || binary.BigEndian.Uint32(hdr[4:8]) != formatVersion {
		return 0, 0, false, nil
	}
	if seq := binary.BigEndian.Uint64(hdr[8:]); wantSeq != 0 && seq != wantSeq {
		return 0, 0, false, nil
	}
	valid = segmentHeaderSize
	remaining := size - segmentHeaderSize
	for {
		var rh [recordHeaderSize]byte
		if _, err := io.ReadFull(r, rh[:]); err != nil {
			// A clean EOF between records is an intact tail.
			return n, valid, errors.Is(err, io.EOF), nil
		}
		remaining -= recordHeaderSize
		length := int64(binary.BigEndian.Uint32(rh[:4]))
		if length == 0 || length > MaxRecordSize || length > remaining {
			return n, valid, false, nil
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(r, body); err != nil {
			return n, valid, false, nil
		}
		remaining -= length
		if crc32.Checksum(body, castagnoli) != binary.BigEndian.Uint32(rh[4:]) {
			return n, valid, false, nil
		}
		if err := fn(body[0], body[1:]); err != nil {
			return n, valid, false, err
		}
		n++
		valid += recordHeaderSize + length
	}
}

// writeSnapshotFile durably writes a snapshot blob covering segments below
// seq: temp file, fsync, atomic rename, directory fsync. It returns the
// file's size.
func writeSnapshotFile(dir string, seq uint64, blob []byte) (int64, error) {
	var buf []byte
	buf = append(buf, snapshotMagic...)
	buf = binary.BigEndian.AppendUint32(buf, formatVersion)
	buf = binary.BigEndian.AppendUint64(buf, seq)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(blob)))
	buf = append(buf, blob...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(blob, castagnoli))

	path := snapshotPath(dir, seq)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("wal: create snapshot: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	syncDir(dir)
	return int64(len(buf)), nil
}

// readSnapshotFile loads and verifies one snapshot file.
func readSnapshotFile(path string, wantSeq uint64) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	const hdr = 4 + 4 + 8 + 4
	if len(data) < hdr+4 || string(data[:4]) != snapshotMagic {
		return nil, errors.New("wal: malformed snapshot")
	}
	if binary.BigEndian.Uint32(data[4:8]) != formatVersion {
		return nil, errors.New("wal: unsupported snapshot version")
	}
	if seq := binary.BigEndian.Uint64(data[8:16]); seq != wantSeq {
		return nil, errors.New("wal: snapshot sequence mismatch")
	}
	blobLen := int(binary.BigEndian.Uint32(data[16:20]))
	if blobLen != len(data)-hdr-4 {
		return nil, errors.New("wal: snapshot length mismatch")
	}
	blob := data[hdr : hdr+blobLen]
	if crc32.Checksum(blob, castagnoli) != binary.BigEndian.Uint32(data[hdr+blobLen:]) {
		return nil, errors.New("wal: snapshot checksum mismatch")
	}
	return blob, nil
}
