// Package wal gives the bottle rack a durability substrate: an append-only,
// segmented, CRC-checked write-ahead log plus point-in-time snapshots, so a
// broker restart recovers every acknowledged bottle instead of silently
// dropping the rack (the paper's model assumes pending requests persist in
// the network until opened or expired — a production rendezvous service has
// to assume the same of itself).
//
// The package is deliberately generic: records are an opaque (type, payload)
// pair and the snapshot is an opaque blob, both encoded by the caller (the
// broker package reuses its wire codec for them — see docs/PROTOCOL.md for
// the exact on-disk formats). What the log provides is ordering, durability
// and bounded disk use:
//
//   - Records are appended through a single committer goroutine fed by an
//     ordered channel, so the log order equals the order in which callers
//     enqueued (callers enqueue inside the same critical section that applies
//     the mutation, making replay order equal apply order).
//   - Durability follows the fsync Policy: PolicyAlways makes Commit a group
//     commit — every record enqueued before the call is fsynced, with
//     concurrent committers amortized into one fsync; PolicyInterval fsyncs
//     on a timer; PolicyNever leaves syncing to the operating system.
//   - The log is cut into segments (rolled at SegmentBytes); a snapshot
//     supersedes every record enqueued before it, so segments older than the
//     newest snapshot are deleted (compaction) and recovery replays only the
//     snapshot plus the tail.
//   - Replay tolerates a torn final record — a crash mid-write loses at most
//     the unsynced suffix, never the ability to recover the prefix.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for Options fields left zero.
const (
	// DefaultInterval is the PolicyInterval fsync period.
	DefaultInterval = 100 * time.Millisecond
	// DefaultSegmentBytes is the segment roll threshold.
	DefaultSegmentBytes = 64 << 20
)

// enqueueDepth is the committer channel's buffer; enqueuers (who may hold a
// rack shard lock) only block once this many records are waiting.
const enqueueDepth = 4096

// Errors of the log.
var (
	// ErrClosed indicates an operation on a closed (or crashed) log.
	ErrClosed = errors.New("wal: log closed")
	// ErrBadPolicy indicates an unknown fsync policy name.
	ErrBadPolicy = errors.New("wal: unknown fsync policy")
)

// Policy selects when appended records are fsynced.
type Policy int

const (
	// PolicyInterval (the default) fsyncs on a timer: a crash loses at most
	// the last Interval of acknowledged records.
	PolicyInterval Policy = iota
	// PolicyAlways fsyncs before Commit returns: an acknowledged record
	// survives any crash. Concurrent commits are grouped into one fsync.
	PolicyAlways
	// PolicyNever never fsyncs: the operating system decides when dirty pages
	// reach the disk. Fastest, weakest.
	PolicyNever
)

// String returns the policy's flag spelling.
func (p Policy) String() string {
	switch p {
	case PolicyAlways:
		return "always"
	case PolicyInterval:
		return "interval"
	case PolicyNever:
		return "never"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy parses a policy's flag spelling.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return PolicyAlways, nil
	case "interval":
		return PolicyInterval, nil
	case "never":
		return PolicyNever, nil
	}
	return 0, fmt.Errorf("%w: %q (want always, interval or never)", ErrBadPolicy, s)
}

// Options tunes a Log.
type Options struct {
	// Dir is the data directory; it is created if missing. Required.
	Dir string
	// Policy selects the fsync behaviour (zero: PolicyInterval).
	Policy Policy
	// Interval is the PolicyInterval fsync period (zero: DefaultInterval).
	Interval time.Duration
	// SegmentBytes is the segment roll threshold (zero: DefaultSegmentBytes).
	SegmentBytes int64
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = DefaultInterval
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	return o
}

// op is one unit of committer work: a record, a commit barrier, or a
// snapshot request.
type op struct {
	rec      *[]byte       // pooled encoded record, nil for control ops
	commit   chan error    // commit barrier: flush+sync everything enqueued before it
	snap     func() []byte // produces the snapshot blob to persist
	snapDone chan error
}

// recBufs recycles record encode buffers between Enqueue (which fills one)
// and the committer (which returns it after staging the bytes). Without the
// pool every logged mutation allocates its record's encoding.
var recBufs = sync.Pool{New: func() any { return new([]byte) }}

// maxPooledRecBuf caps the capacity recycled through recBufs so one oversized
// record does not pin a large buffer forever.
const maxPooledRecBuf = 1 << 20

// putRecBuf returns a record buffer to the pool (dropping oversized ones).
func putRecBuf(buf *[]byte) {
	if cap(*buf) > maxPooledRecBuf {
		return
	}
	*buf = (*buf)[:0]
	recBufs.Put(buf)
}

// Log is a segmented write-ahead log bound to one data directory. Open scans
// the directory; LoadSnapshot and Replay recover its contents; Start begins a
// fresh segment and accepts appends. Enqueue/Commit/Snapshot are safe for
// concurrent use once started.
type Log struct {
	opts   Options
	unlock func() // releases the data-directory flock

	// Scan results, owned between Open and Start.
	segs      []segmentInfo
	snaps     []snapshotInfo
	snapSeq   uint64 // first segment seq NOT covered by the loaded snapshot
	replayed  bool
	tornSeq   uint64 // segment where Replay hit a torn record (0: none)
	tornValid int64  // valid byte prefix of the torn segment

	ch      chan op
	stop    chan struct{} // closed by Close/Crash; enqueuers bail out on it
	exited  chan struct{} // closed when the committer returns
	started bool
	crash   atomic.Bool // Crash: committer abandons buffered state

	mu     sync.Mutex // guards closing state transitions
	closed bool

	err      atomic.Value // sticky first write error, type error
	size     atomic.Int64 // on-disk bytes: live segments + live snapshot
	appended atomic.Int64 // records enqueued since open or last snapshot

	// Committer-owned state.
	cur *segmentWriter
	// batch stages the records of one committer burst (one fsync window under
	// PolicyAlways, one channel drain otherwise) so they reach the segment as
	// a single write instead of one bufio copy per record. Capacity is reused
	// across bursts.
	batch []byte
}

// Open scans (creating if needed) the data directory and returns a log ready
// for recovery: call LoadSnapshot, then Replay, then Start.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	unlock, err := lockDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	l := &Log{
		opts:   opts,
		unlock: unlock,
		ch:     make(chan op, enqueueDepth),
		stop:   make(chan struct{}),
		exited: make(chan struct{}),
	}
	if err := l.scan(); err != nil {
		unlock()
		return nil, err
	}
	return l, nil
}

// stickyErr returns the first write error, if any.
func (l *Log) stickyErr() error {
	if v := l.err.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// setErr records the first write error; later records are dropped and later
// commits fail with it.
func (l *Log) setErr(err error) {
	if l.err.Load() == nil {
		l.err.Store(fmt.Errorf("wal: log failed: %w", err))
	}
}

// SizeBytes returns the current on-disk size of the log: live segments plus
// the live snapshot.
func (l *Log) SizeBytes() int64 { return l.size.Load() }

// AppendedSinceSnapshot returns how many records have been enqueued since the
// log was opened or the last snapshot was written; periodic snapshot loops
// use it to skip no-op snapshots.
func (l *Log) AppendedSinceSnapshot() int64 { return l.appended.Load() }

// Start opens a fresh segment (sequence one past everything on disk — a torn
// tail is never appended to) and starts the committer. It also finishes any
// compaction interrupted by a crash (deleting segments and snapshots
// superseded by the loaded snapshot) and trims the torn segment Replay
// found, if any, so the tear cannot shadow records written from here on.
func (l *Log) Start() error {
	if l.started {
		return errors.New("wal: already started")
	}
	l.removeObsolete(l.snapSeq)
	if err := l.trimTorn(); err != nil {
		return err
	}
	next := l.snapSeq
	if n := len(l.segs); n > 0 {
		next = l.segs[n-1].seq + 1
	}
	if next == 0 {
		next = 1
	}
	w, err := createSegment(l.opts.Dir, next)
	if err != nil {
		return err
	}
	l.cur = w
	l.size.Add(w.size)
	l.segs = append(l.segs, segmentInfo{seq: next, path: w.path, size: w.size})
	l.started = true
	go l.run()
	return nil
}

// Enqueue appends one record to the log's ordered queue. It is meant to be
// called inside the same critical section that applies the record's effect,
// so log order equals apply order; durability (per the policy) is what Commit
// is for. Records enqueued during shutdown may be dropped — the caller's
// Commit reports the close.
func (l *Log) Enqueue(typ byte, payload []byte) {
	l.appended.Add(1)
	buf := recBufs.Get().(*[]byte)
	*buf = appendRecord((*buf)[:0], typ, payload)
	select {
	case l.ch <- op{rec: buf}:
	case <-l.stop:
		putRecBuf(buf)
	}
}

// Commit makes every record enqueued before the call durable per the policy:
// under PolicyAlways it blocks for a (group) fsync; under PolicyInterval and
// PolicyNever it reports a sticky write failure or a closed log, if any —
// the closed check is what keeps Enqueue's contract honest: a record dropped
// by a shutdown race surfaces here as ErrClosed instead of a false success.
func (l *Log) Commit() error {
	if err := l.stickyErr(); err != nil {
		return err
	}
	select {
	case <-l.stop:
		return ErrClosed
	default:
	}
	if l.opts.Policy != PolicyAlways {
		return nil
	}
	done := make(chan error, 1)
	select {
	case l.ch <- op{commit: done}:
	case <-l.stop:
		return ErrClosed
	}
	select {
	case err := <-done:
		return err
	case <-l.exited:
		if err := l.stickyErr(); err != nil {
			return err
		}
		return ErrClosed
	}
}

// Snapshot persists a point-in-time snapshot superseding every record
// enqueued before the call, then compacts: the current segment is retired, a
// fresh one is started, and all older segments and snapshots are deleted.
// The blob function is evaluated once, by the committer, when the snapshot's
// turn in the log order comes; the caller must guarantee it produces a blob
// reflecting exactly the effects of the records enqueued before this call
// (the broker captures immutable references under every shard lock and
// serializes them lazily here, keeping the stop-the-world window short).
// The returned wait function reports when the snapshot is durable; the
// enqueue itself establishes its position in the log order.
func (l *Log) Snapshot(blob func() []byte) (wait func() error) {
	done := make(chan error, 1)
	select {
	case l.ch <- op{snap: blob, snapDone: done}:
	case <-l.stop:
		return func() error { return ErrClosed }
	}
	return func() error {
		select {
		case err := <-done:
			return err
		case <-l.exited:
			if err := l.stickyErr(); err != nil {
				return err
			}
			return ErrClosed
		}
	}
}

// Close drains the queue, flushes and fsyncs the tail, and closes the
// current segment. The log cannot be reused; Open the directory again.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.stop)
	l.mu.Unlock()
	defer l.unlock()
	if !l.started {
		close(l.exited)
		return nil
	}
	<-l.exited
	return l.stickyErr()
}

// Crash abandons the log the way a kill -9 would: queued records and
// buffered bytes are dropped without flushing, and the file is closed
// mid-state. It exists so durability tests can exercise recovery from an
// unclean shutdown in-process; production code calls Close.
func (l *Log) Crash() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.crash.Store(true)
	close(l.stop)
	l.mu.Unlock()
	// The flock is released so the same test process can reopen the
	// directory; a real kill -9 releases it via process death anyway.
	defer l.unlock()
	if !l.started {
		close(l.exited)
		return
	}
	<-l.exited
}

// run is the committer: the single goroutine that writes records, serves
// commit barriers (group commit), rolls segments, and persists snapshots.
func (l *Log) run() {
	defer close(l.exited)
	var tick <-chan time.Time
	if l.opts.Policy == PolicyInterval {
		t := time.NewTicker(l.opts.Interval)
		defer t.Stop()
		tick = t.C
	}
	dirty := false // bytes flushed to the OS but not yet fsynced
	for {
		select {
		case o := <-l.ch:
			l.handleBatch(o, &dirty)
		case <-tick:
			if dirty && l.sync() == nil {
				dirty = false
			}
		case <-l.stop:
			l.drainAndExit(dirty)
			return
		}
	}
}

// handleBatch serves one op plus everything else already queued, then
// flushes the burst; commit barriers collected along the way share one
// fsync (group commit).
func (l *Log) handleBatch(first op, dirty *bool) {
	var commits []chan error
	apply := func(o op) {
		switch {
		case o.rec != nil:
			l.writeRecord(*o.rec)
			putRecBuf(o.rec)
			*dirty = true
		case o.commit != nil:
			commits = append(commits, o.commit)
		case o.snapDone != nil:
			l.flush()
			l.persistSnapshot(o.snap, o.snapDone)
			*dirty = false
		}
	}
	apply(first)
	for drained := false; !drained; {
		select {
		case o := <-l.ch:
			apply(o)
		default:
			drained = true
		}
	}
	l.flush()
	if len(commits) > 0 {
		err := l.sync()
		if err == nil {
			*dirty = false
		}
		for _, c := range commits {
			c <- err
		}
	}
}

// drainAndExit finishes queued work on Close; on Crash it abandons
// everything unflushed instead.
func (l *Log) drainAndExit(dirty bool) {
	if l.crash.Load() {
		if l.cur != nil {
			l.cur.f.Close() // abandon bufio contents
		}
		return
	}
	for {
		select {
		case o := <-l.ch:
			l.handleBatch(o, &dirty)
		default:
			l.flush()
			l.sync()
			if l.cur != nil {
				if err := l.cur.f.Close(); err != nil {
					l.setErr(err)
				}
			}
			return
		}
	}
}

// batchFlushBytes caps how much one burst stages before the batch buffer is
// flushed mid-drain. Kept well under maxPooledRecBuf so the buffer's capacity
// survives flushBatch and steady state regrows nothing: an uncapped burst
// (the committer drains up to enqueueDepth records) would stage several
// megabytes, trip the release cap every flush, and rebuild the buffer from
// zero through repeated doublings.
const batchFlushBytes = 512 << 10

// writeRecord stages one encoded record into the committer's batch buffer,
// rolling the segment first when the staged size would overflow it. The
// bytes reach the segment writer in flushBatch, one write per burst (or per
// batchFlushBytes within an oversized burst).
func (l *Log) writeRecord(rec []byte) {
	if l.stickyErr() != nil {
		return
	}
	staged := l.cur.size + int64(len(l.batch))
	if staged+int64(len(rec)) > l.opts.SegmentBytes && staged > segmentHeaderSize {
		l.flushBatch()
		if err := l.roll(); err != nil {
			l.setErr(err)
			return
		}
	}
	l.batch = append(l.batch, rec...)
	l.size.Add(int64(len(rec)))
	if len(l.batch) >= batchFlushBytes {
		l.flushBatch()
	}
}

// flushBatch hands the staged burst to the segment writer as a single write,
// keeping the batch buffer's capacity for the next burst (oversized buffers
// are released so one large burst does not pin memory forever).
func (l *Log) flushBatch() {
	if len(l.batch) == 0 {
		return
	}
	if l.stickyErr() == nil {
		if err := l.cur.write(l.batch); err != nil {
			l.setErr(err)
		}
		l.segs[len(l.segs)-1].size = l.cur.size
	}
	if cap(l.batch) > maxPooledRecBuf {
		l.batch = nil
	} else {
		l.batch = l.batch[:0]
	}
}

// flush pushes staged and buffered bytes to the operating system.
func (l *Log) flush() {
	l.flushBatch()
	if l.stickyErr() != nil {
		return
	}
	if err := l.cur.bw.Flush(); err != nil {
		l.setErr(err)
	}
}

// sync flushes and fsyncs the current segment.
func (l *Log) sync() error {
	l.flushBatch()
	if err := l.stickyErr(); err != nil {
		return err
	}
	if err := l.cur.bw.Flush(); err != nil {
		l.setErr(err)
		return l.stickyErr()
	}
	if err := l.cur.f.Sync(); err != nil {
		l.setErr(err)
		return l.stickyErr()
	}
	return nil
}

// roll closes the current segment (fsynced, so a completed segment is never
// torn) and opens the next.
func (l *Log) roll() error {
	if err := l.sync(); err != nil {
		return err
	}
	if err := l.cur.f.Close(); err != nil {
		return err
	}
	next := l.cur.seq + 1
	w, err := createSegment(l.opts.Dir, next)
	if err != nil {
		return err
	}
	l.cur = w
	l.size.Add(w.size)
	l.segs = append(l.segs, segmentInfo{seq: next, path: w.path, size: w.size})
	syncDir(l.opts.Dir)
	return nil
}

// persistSnapshot durably writes the snapshot blob, rolls to a fresh
// segment, and deletes every segment and snapshot the blob supersedes. On
// failure the previous segments are left intact, so recovery still has the
// full record history.
func (l *Log) persistSnapshot(makeBlob func() []byte, done chan error) {
	blob := makeBlob()
	fail := func(err error) {
		l.setErr(err)
		done <- l.stickyErr()
	}
	if err := l.stickyErr(); err != nil {
		done <- err
		return
	}
	// Retire the current segment: everything in it (and before) is covered by
	// the blob; the records enqueued after the snapshot request go to the new
	// segment and are replayed on top of it.
	if err := l.cur.f.Sync(); err != nil {
		fail(err)
		return
	}
	if err := l.cur.f.Close(); err != nil {
		fail(err)
		return
	}
	covers := l.cur.seq + 1
	size, err := writeSnapshotFile(l.opts.Dir, covers, blob)
	if err != nil {
		fail(err)
		return
	}
	w, err := createSegment(l.opts.Dir, covers)
	if err != nil {
		fail(err)
		return
	}
	l.cur = w
	l.size.Add(w.size + size)
	l.segs = append(l.segs, segmentInfo{seq: covers, path: w.path, size: w.size})
	l.snaps = append(l.snaps, snapshotInfo{seq: covers, path: snapshotPath(l.opts.Dir, covers), size: size})
	syncDir(l.opts.Dir)
	l.removeObsolete(covers)
	l.appended.Store(0)
	done <- nil
}

// trimTorn repairs the torn segment found by Replay: a tear past the header
// is truncated to its valid record prefix, a segment without even a valid
// header is deleted, and segments beyond the tear (only possible after
// repeated unclean shutdowns) are deleted — replay already cannot see past
// the tear, so their records are unreachable history. This runs before the
// fresh segment is created, so everything appended from now on sits after a
// clean tail and is reachable by the next recovery.
func (l *Log) trimTorn() error {
	if !l.replayed || l.tornSeq == 0 {
		return nil
	}
	kept := l.segs[:0]
	for _, s := range l.segs {
		switch {
		case s.seq < l.tornSeq:
			kept = append(kept, s)
		case s.seq == l.tornSeq && l.tornValid >= segmentHeaderSize:
			if err := os.Truncate(s.path, l.tornValid); err != nil {
				return fmt.Errorf("wal: trim torn segment: %w", err)
			}
			l.size.Add(l.tornValid - s.size)
			s.size = l.tornValid
			kept = append(kept, s)
		default:
			if err := os.Remove(s.path); err != nil {
				return fmt.Errorf("wal: remove torn segment: %w", err)
			}
			l.size.Add(-s.size)
		}
	}
	l.segs = kept
	syncDir(l.opts.Dir)
	return nil
}

// removeObsolete deletes segments and snapshots fully superseded by the
// snapshot covering sequence covers, releasing their bytes.
func (l *Log) removeObsolete(covers uint64) {
	keptSegs := l.segs[:0]
	for _, s := range l.segs {
		if s.seq < covers {
			if os.Remove(s.path) == nil {
				l.size.Add(-s.size)
			}
			continue
		}
		keptSegs = append(keptSegs, s)
	}
	l.segs = keptSegs
	keptSnaps := l.snaps[:0]
	for _, s := range l.snaps {
		if s.seq < covers {
			if os.Remove(s.path) == nil {
				l.size.Add(-s.size)
			}
			continue
		}
		keptSnaps = append(keptSnaps, s)
	}
	l.snaps = keptSnaps
}

// syncDir fsyncs a directory so renames and creations within it are durable;
// best-effort (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// snapshotPath names the snapshot file covering segments below seq.
func snapshotPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.snap", seq))
}

// segmentPath names the segment file with the given sequence.
func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", seq))
}
