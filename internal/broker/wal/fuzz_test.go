package wal

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// validSegmentBytes builds an in-memory segment image with a few records.
func validSegmentBytes(seq uint64, recs ...[]byte) []byte {
	var buf []byte
	buf = append(buf, segmentMagic...)
	buf = binary.BigEndian.AppendUint32(buf, formatVersion)
	buf = binary.BigEndian.AppendUint64(buf, seq)
	for i, r := range recs {
		buf = appendRecord(buf, byte(1+i%5), r)
	}
	return buf
}

// FuzzWALReplay feeds arbitrary bytes to the segment replayer: it must never
// panic, never hand the callback a record that fails its CRC, and always
// report a record count consistent with a well-formed prefix.
func FuzzWALReplay(f *testing.F) {
	f.Add(validSegmentBytes(1))
	f.Add(validSegmentBytes(1, []byte("hello"), []byte(""), bytes.Repeat([]byte{0xAB}, 300)))
	full := validSegmentBytes(7, []byte("first"), []byte("second"))
	f.Add(full)
	f.Add(full[:len(full)-3])               // torn final record
	f.Add(append(full[:0:0], full[:19]...)) // torn header
	corrupt := append(full[:0:0], full...)  // CRC-broken tail
	corrupt[len(corrupt)-1] ^= 0x01
	f.Add(corrupt)
	f.Add([]byte("SBWL garbage that is not a segment"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var n int
		var replayedBytes int64
		got, valid, _, err := replaySegment(bytes.NewReader(data), int64(len(data)), 0, func(typ byte, payload []byte) error {
			n++
			replayedBytes += int64(recordHeaderSize + 1 + len(payload))
			return nil
		})
		if err != nil {
			t.Fatalf("callback returned no error, replay did: %v", err)
		}
		if got != n {
			t.Fatalf("reported %d records, callback saw %d", got, n)
		}
		if valid > int64(len(data)) {
			t.Fatalf("valid prefix %d exceeds input size %d", valid, len(data))
		}
		if n > 0 && valid != segmentHeaderSize+replayedBytes {
			t.Fatalf("valid prefix %d inconsistent with %d replayed bytes", valid, replayedBytes)
		}
	})
}
