package broker

import (
	"bytes"
	"testing"
)

// Allocation budgets for the steady-state codec paths. These pin the
// tentpole's "0 allocs/op codec round-trips" guarantee: the Append* encoders
// reuse the caller's scratch and the *View decoders alias the frame, so a
// warmed round trip must not touch the heap. A regression here fails go test
// long before it shows up in a benchmark diff.

func requireZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(200, f); avg != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, avg)
	}
}

func TestCodecRoundTripAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; budgets are pinned by the non-race run")
	}
	res := SweepResult{
		Bottles: []SweptBottle{
			{ID: "req-alloc-1", Raw: bytes.Repeat([]byte{0xa5}, 512)},
			{ID: "req-alloc-2", Raw: bytes.Repeat([]byte{0x5a}, 768)},
			{ID: "req-alloc-3", Raw: bytes.Repeat([]byte{0x3c}, 256)},
		},
		Scanned:  41,
		Rejected: 7,
	}
	var buf []byte
	var view SweepResultView
	requireZeroAllocs(t, "sweep result", func() {
		buf = AppendSweepResult(buf[:0], res)
		if err := UnmarshalSweepResultView(buf, &view); err != nil {
			t.Fatal(err)
		}
		if len(view.Bottles) != len(res.Bottles) {
			t.Fatalf("round trip lost bottles: %d != %d", len(view.Bottles), len(res.Bottles))
		}
	})

	reply := bytes.Repeat([]byte{0xee}, 300)
	var post ReplyPostView
	requireZeroAllocs(t, "reply post", func() {
		buf = AppendReplyPost(buf[:0], "req-alloc-1", reply)
		if err := UnmarshalReplyPostView(buf, &post); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(post.Raw, reply) {
			t.Fatal("round trip corrupted the reply")
		}
	})

	raws := [][]byte{
		bytes.Repeat([]byte{1}, 100),
		bytes.Repeat([]byte{2}, 200),
		bytes.Repeat([]byte{3}, 300),
	}
	var out [][]byte
	requireZeroAllocs(t, "raw list", func() {
		buf = AppendRawList(buf[:0], raws)
		var err error
		out, err = UnmarshalRawListInto(buf, out[:0])
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(raws) {
			t.Fatalf("round trip lost blobs: %d != %d", len(out), len(raws))
		}
	})
}

// TestCodecViewsAliasSource pins the documented zero-copy contract: view
// decoders return subslices of the frame, not copies. If a decoder started
// copying, the alloc budgets above would catch the cost but not the contract;
// the shard-boundary copy-on-retain discipline depends on both.
func TestCodecViewsAliasSource(t *testing.T) {
	frame := AppendReplyPost(nil, "req-alias", []byte("payload-bytes"))
	var v ReplyPostView
	if err := UnmarshalReplyPostView(frame, &v); err != nil {
		t.Fatal(err)
	}
	if len(v.Raw) == 0 || &v.Raw[0] != &frame[len(frame)-len(v.Raw)] {
		t.Fatal("ReplyPostView.Raw does not alias the frame")
	}
	frame[len(frame)-1] ^= 0xff
	if v.Raw[len(v.Raw)-1] != byte('s')^0xff {
		t.Fatal("mutating the frame did not show through the view: decode copied")
	}
}
