package broker

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"sealedbottle/internal/broker/wal"
	"sealedbottle/internal/core"
)

// bottleState is one bottle's recoverable state: its exact raw package plus
// its queued replies, in order.
type bottleState struct {
	Raw     string
	Replies []string
}

// rackState fingerprints everything durability must preserve. Counters are
// deliberately absent: they describe traffic history, not rack state.
func rackState(r *Rack) map[string]bottleState {
	out := map[string]bottleState{}
	for _, sh := range r.shards {
		sh.mu.Lock()
		for id, b := range sh.bottles {
			st := bottleState{Raw: string(b.raw)}
			for _, rep := range sh.replies[id] {
				st.Replies = append(st.Replies, string(rep))
			}
			out[id] = st
		}
		sh.mu.Unlock()
	}
	return out
}

// durableConfig builds a rack config persisting under dir with the given
// policy and the shared test clock.
func durableConfig(clock *testClock, dir string, policy wal.Policy) Config {
	return Config{
		Shards:       8,
		Workers:      2,
		ReapInterval: -1,
		Now:          clock.Now,
		Durability:   &DurabilityConfig{Dir: dir, Fsync: policy},
	}
}

// rawBottles pre-marshals n wire-distinct packages sharing one build.
func rawBottles(tb testing.TB, clock *testClock, n int) [][]byte {
	tb.Helper()
	rng := rand.New(rand.NewSource(42))
	_, pkg := buildRawPackage(tb, rng, clock, "origin-durable",
		interests("chess"), interests("go", "shogi", "xiangqi"), 2)
	out := make([][]byte, n)
	for i := range out {
		clone := pkg.Clone()
		clone.ID = fmt.Sprintf("%032x", i)
		var err error
		if out[i], err = clone.Marshal(); err != nil {
			tb.Fatal(err)
		}
	}
	return out
}

// replyFor marshals a minimal reply addressed to id.
func replyFor(clock *testClock, id, from string) []byte {
	rep := core.Reply{
		RequestID: id,
		From:      from,
		SentAt:    clock.Now(),
		Acks:      [][]byte{[]byte("sealed-ack-" + from)},
	}
	return rep.Marshal()
}

// driveMixedLoad applies an identical op mix to a rack: batched submits,
// replies (batched and single), removes, and fetches, finishing with a
// sentinel submit so that (under PolicyAlways) every asynchronously logged
// drain record sits before a durable commit barrier.
func driveMixedLoad(tb testing.TB, r *Rack, clock *testClock, raws [][]byte) {
	tb.Helper()
	const batch = 128
	for start := 0; start < len(raws); start += batch {
		end := start + batch
		if end > len(raws) {
			end = len(raws)
		}
		results, err := r.SubmitBatch(context.Background(), raws[start:end])
		if err != nil {
			tb.Fatal(err)
		}
		for _, res := range results {
			if res.Err != nil {
				tb.Fatal(res.Err)
			}
		}
	}
	// Replies: every 3rd bottle gets one batched reply, every 9th a second,
	// single-call one.
	var posts []ReplyPost
	for i := 0; i < len(raws); i += 3 {
		id := fmt.Sprintf("%032x", i)
		posts = append(posts, ReplyPost{RequestID: id, Raw: replyFor(clock, id, "batch-replier")})
	}
	errs, err := r.ReplyBatch(context.Background(), posts)
	if err != nil {
		tb.Fatal(err)
	}
	for _, e := range errs {
		if e != nil {
			tb.Fatal(e)
		}
	}
	for i := 0; i < len(raws); i += 9 {
		id := fmt.Sprintf("%032x", i)
		if err := r.Reply(context.Background(), id, replyFor(clock, id, "solo-replier")); err != nil {
			tb.Fatal(err)
		}
	}
	// Removes: every 10th bottle comes off the rack.
	for i := 0; i < len(raws); i += 10 {
		if _, err := r.Remove(context.Background(), fmt.Sprintf("%032x", i)); err != nil {
			tb.Fatal(err)
		}
	}
	// Fetches: every 6th bottle's replies are drained (some queues are empty,
	// some bottles already removed — both outcomes must replay identically).
	for i := 0; i < len(raws); i += 6 {
		_, _ = r.Fetch(context.Background(), fmt.Sprintf("%032x", i))
	}
	// Sentinel: orders a durable commit after the drain records above.
	sentinel := rawBottles(tb, clock, 1)
	pkg, err := core.UnmarshalPackage(sentinel[0])
	if err != nil {
		tb.Fatal(err)
	}
	pkg.ID = "sentinel-after-fetches-00000000"
	raw, err := pkg.Marshal()
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := r.Submit(context.Background(), raw); err != nil {
		tb.Fatal(err)
	}
}

// TestDurableRecoverCleanClose checks the full lifecycle across a clean
// restart: state equals an uninterrupted in-memory twin's, and the recovery
// counters surface in Stats.
func TestDurableRecoverCleanClose(t *testing.T) {
	clock := newTestClock()
	dir := t.TempDir()
	raws := rawBottles(t, clock, 200)

	durable, err := Open(durableConfig(clock, dir, wal.PolicyInterval))
	if err != nil {
		t.Fatal(err)
	}
	driveMixedLoad(t, durable, clock, raws)
	want := rackState(durable)
	durable.Close()

	twin := New(Config{Shards: 4, Workers: 2, ReapInterval: -1, Now: clock.Now})
	defer twin.Close()
	driveMixedLoad(t, twin, clock, raws)
	if twinState := rackState(twin); !reflect.DeepEqual(want, twinState) {
		t.Fatal("durable rack diverged from in-memory twin before restart")
	}

	recovered, err := Open(durableConfig(clock, dir, wal.PolicyInterval))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if got := rackState(recovered); !reflect.DeepEqual(want, got) {
		t.Fatalf("recovered state diverged: %d bottles, want %d", len(got), len(want))
	}
	st := statsOf(recovered)
	if st.Recovered != uint64(len(want)) {
		t.Fatalf("Stats.Recovered = %d, want %d", st.Recovered, len(want))
	}
	if st.WALBytes == 0 {
		t.Fatal("Stats.WALBytes = 0 on a durable rack")
	}
	// Replay must not masquerade as traffic: recovery reports itself only
	// through Recovered, never the operation counters.
	if st.Totals.Submitted != 0 || st.Totals.RepliesIn != 0 || st.Totals.RepliesOut != 0 {
		t.Fatalf("recovery leaked into traffic counters: %+v", st.Totals)
	}
	mem := New(Config{Shards: 2, ReapInterval: -1})
	defer mem.Close()
	if st := statsOf(mem); st.Recovered != 0 || st.WALBytes != 0 {
		t.Fatalf("in-memory rack must report zero Recovered/WALBytes, got %d/%d", st.Recovered, st.WALBytes)
	}
}

// TestDurableCrashReplayEquivalence is the acceptance test: a rack killed
// (not closed) after a 10k-bottle mixed load recovers every acknowledged
// operation — its state is identical to an uninterrupted run's.
func TestDurableCrashReplayEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-bottle load")
	}
	clock := newTestClock()
	dir := t.TempDir()
	raws := rawBottles(t, clock, 10000)

	durable, err := Open(durableConfig(clock, dir, wal.PolicyAlways))
	if err != nil {
		t.Fatal(err)
	}
	driveMixedLoad(t, durable, clock, raws)
	// kill -9: no flush, no close; acknowledged operations were group-
	// committed, so they must all survive.
	durable.dur.log.Crash()
	durable.Close()

	twin := New(Config{Shards: 16, Workers: 2, ReapInterval: -1, Now: clock.Now})
	defer twin.Close()
	driveMixedLoad(t, twin, clock, raws)
	want := rackState(twin)

	recovered, err := Open(durableConfig(clock, dir, wal.PolicyAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	got := rackState(recovered)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("replay not equivalent: recovered %d bottles, uninterrupted twin has %d", len(got), len(want))
	}
	if st := statsOf(recovered); st.Recovered != uint64(len(want)) {
		t.Fatalf("Stats.Recovered = %d, want %d", st.Recovered, len(want))
	}
}

// TestDurableKillMidBatch simulates dying in the middle of writing a batch:
// a partial record is torn onto the log tail after the crash. Recovery must
// ignore the tear and keep every acknowledged operation.
func TestDurableKillMidBatch(t *testing.T) {
	clock := newTestClock()
	dir := t.TempDir()
	raws := rawBottles(t, clock, 300)

	durable, err := Open(durableConfig(clock, dir, wal.PolicyAlways))
	if err != nil {
		t.Fatal(err)
	}
	driveMixedLoad(t, durable, clock, raws)
	want := rackState(durable)
	durable.dur.log.Crash()
	durable.Close()

	// Tear a half-written record onto the newest segment: a plausible length
	// prefix with only part of its body behind it.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments to tear (err=%v)", err)
	}
	tail := segs[len(segs)-1]
	f, err := os.OpenFile(tail, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := binary.BigEndian.AppendUint32(nil, 4096) // claims 4 KiB...
	torn = binary.BigEndian.AppendUint32(torn, 0xDEADBEEF)
	torn = append(torn, 1, 2, 3, 4, 5) // ...delivers 5 bytes
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recovered, err := Open(durableConfig(clock, dir, wal.PolicyAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if got := rackState(recovered); !reflect.DeepEqual(want, got) {
		t.Fatal("acknowledged state lost behind a torn batch tail")
	}
}

// TestDurableSnapshotRecoveryAndCompaction drives load across a snapshot
// boundary: recovery loads the snapshot plus the tail, and compaction leaves
// exactly one segment and one snapshot on disk.
func TestDurableSnapshotRecoveryAndCompaction(t *testing.T) {
	clock := newTestClock()
	dir := t.TempDir()
	raws := rawBottles(t, clock, 400)

	durable, err := Open(durableConfig(clock, dir, wal.PolicyAlways))
	if err != nil {
		t.Fatal(err)
	}
	driveMixedLoad(t, durable, clock, raws[:200])
	if err := durable.Snapshot(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(segs) != 1 || len(snaps) != 1 {
		t.Fatalf("after snapshot: %d segments, %d snapshots; want 1 and 1", len(segs), len(snaps))
	}
	// Post-snapshot tail: more submits, replies to pre-snapshot bottles,
	// removes of pre-snapshot bottles.
	if _, err := durable.SubmitBatch(context.Background(), raws[200:]); err != nil {
		t.Fatal(err)
	}
	lateID := fmt.Sprintf("%032x", 2) // submitted before the snapshot, alive
	if err := durable.Reply(context.Background(), lateID, replyFor(clock, lateID, "late-replier")); err != nil {
		t.Fatal(err)
	}
	if _, err := durable.Remove(context.Background(), fmt.Sprintf("%032x", 4)); err != nil {
		t.Fatal(err)
	}
	want := rackState(durable)
	durable.dur.log.Crash()
	durable.Close()

	recovered, err := Open(durableConfig(clock, dir, wal.PolicyAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if got := rackState(recovered); !reflect.DeepEqual(want, got) {
		t.Fatal("snapshot+tail recovery diverged from pre-crash state")
	}
}

// TestDurableExpiryReArmed: bottles recovered with persisted deadlines must
// still expire once those deadlines pass.
func TestDurableExpiryReArmed(t *testing.T) {
	clock := newTestClock()
	dir := t.TempDir()
	raws := rawBottles(t, clock, 10)

	durable, err := Open(durableConfig(clock, dir, wal.PolicyAlways))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := durable.SubmitBatch(context.Background(), raws); err != nil {
		t.Fatal(err)
	}
	durable.Close()

	// Restart within the validity window: everything comes back.
	recovered, err := Open(durableConfig(clock, dir, wal.PolicyAlways))
	if err != nil {
		t.Fatal(err)
	}
	if held := statsOf(recovered).Held; held != len(raws) {
		t.Fatalf("recovered %d bottles, want %d", held, len(raws))
	}
	// The persisted deadline still governs: advance past it and reap.
	clock.Advance(core.DefaultValidity + time.Minute)
	if n := recovered.Reap(); n != len(raws) {
		t.Fatalf("reaped %d recovered bottles, want %d", n, len(raws))
	}
	recovered.Close()

	// Restart after the deadline: recovery itself drops them.
	late, err := Open(durableConfig(clock, dir, wal.PolicyAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	if held := statsOf(late).Held; held != 0 {
		t.Fatalf("expired bottles recovered: held=%d, want 0", held)
	}
}

// TestSnapshotOnInMemoryRack: the durability API fails loudly, not quietly,
// without a log.
func TestSnapshotOnInMemoryRack(t *testing.T) {
	r := New(Config{Shards: 2, ReapInterval: -1})
	defer r.Close()
	if err := r.Snapshot(); err != ErrNotDurable {
		t.Fatalf("Snapshot on in-memory rack = %v, want ErrNotDurable", err)
	}
}

// TestDurableFetchStaysDrained: a drained reply queue must not resurrect
// across a clean restart (the drain record replays).
func TestDurableFetchStaysDrained(t *testing.T) {
	clock := newTestClock()
	dir := t.TempDir()
	raws := rawBottles(t, clock, 1)
	id := fmt.Sprintf("%032x", 0)

	durable, err := Open(durableConfig(clock, dir, wal.PolicyAlways))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := durable.Submit(context.Background(), raws[0]); err != nil {
		t.Fatal(err)
	}
	if err := durable.Reply(context.Background(), id, replyFor(clock, id, "replier")); err != nil {
		t.Fatal(err)
	}
	got, err := durable.Fetch(context.Background(), id)
	if err != nil || len(got) != 1 {
		t.Fatalf("Fetch = (%d replies, %v), want 1", len(got), err)
	}
	durable.Close()

	recovered, err := Open(durableConfig(clock, dir, wal.PolicyAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	again, err := recovered.Fetch(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("drained replies re-delivered after clean restart: %d", len(again))
	}
}
