// Package replica turns a single bottle rack into a replication-aware member
// of an R-way replicated ring: it implements the server side of the
// replication opcodes (transport.ReplicaHandler) on top of a broker.Rack.
//
// The design is hinted handoff, not consensus. Placement is decided by the
// client ring (rendezvous hashing over the member names); when a write cannot
// reach one of a bottle's replicas, the ring asks a replica that did succeed
// to queue a hint — a handoff record in the write-ahead-log encoding — for
// the unreachable peer. Each node keeps one bounded, deduplicated queue per
// destination and a background streamer that periodically redials the peer
// and delivers the queued records rack-to-rack (OpHandoff). Records apply
// idempotently (duplicate submits, replies to unknown bottles and removes of
// absent bottles are all tolerated), so at-least-once delivery converges
// without coordination; there is no stop-the-world transfer at any point.
//
// Consistency story (see docs/PROTOCOL.md §2.10): replication is
// best-effort/eventual. A reader that observes divergence (a fetch that
// succeeds on some replicas only) triggers read-repair through the same hint
// path; sweeps merge replica answers client-side and deduplicate by bottle
// ID. The only guarantee is convergence of live replicas once connectivity
// returns — exactly the bar the rendezvous broker needs, since bottles are
// soft state with expiry.
package replica

import (
	"context"
	"crypto/tls"
	"errors"
	"strings"
	"sync"
	"time"

	"sealedbottle/internal/broker"
	"sealedbottle/internal/broker/transport"
	"sealedbottle/internal/core"
)

// Defaults for Config's zero values.
const (
	// DefaultMaxHintsPerDest bounds one destination's hint queue, in records.
	DefaultMaxHintsPerDest = 8192
	// DefaultStreamInterval is the redial cadence of the hint streamer.
	DefaultStreamInterval = 2 * time.Second
	// DefaultStreamBatch is the records-per-OpHandoff ceiling when streaming.
	DefaultStreamBatch = 256
)

// HandoffTarget is a dialed peer the streamer delivers hints to.
// *transport.Mux and *transport.Client both satisfy it.
type HandoffTarget interface {
	Handoff(ctx context.Context, recs []broker.HandoffRecord) (int, error)
	Close() error
}

// Config tunes a Node.
type Config struct {
	// Self is this node's member name (its position in the ring's rendezvous
	// order). Hints addressed to Self apply locally instead of queueing.
	Self string
	// Peers seeds the peer table: member name to dialable address. The table
	// is mutable at runtime (SetPeer/RemovePeer, or remotely via OpPeers).
	Peers map[string]string
	// MaxHintsPerDest bounds each destination's queue, in records; past it
	// the oldest records are shed (zero: DefaultMaxHintsPerDest).
	MaxHintsPerDest int
	// StreamInterval is how often the streamer tries queued destinations
	// (zero: DefaultStreamInterval; negative: no background streamer — tests
	// call Flush explicitly).
	StreamInterval time.Duration
	// StreamBatch caps records per delivery round trip (zero:
	// DefaultStreamBatch).
	StreamBatch int
	// Dial opens a connection to a peer address (nil: a multiplexed
	// transport client with a 10s call timeout, carrying Token/TLS below).
	Dial func(addr string) (HandoffTarget, error)
	// Token is the capability token the default dialer presents to peers —
	// the rack's own identity, minted with replica scope, so hint and handoff
	// streams authenticate rack-to-rack. Ignored when Dial is set.
	Token []byte
	// TLS, when set, makes the default dialer wrap peer connections in TLS.
	// Ignored when Dial is set.
	TLS *tls.Config
}

// hintQueue is one destination's pending handoff records, deduplicated by
// record bytes so a flapping peer doesn't accumulate the same bottle many
// times over.
type hintQueue struct {
	recs []broker.HandoffRecord
	keys map[string]struct{}
}

func recKey(rec broker.HandoffRecord) string {
	return string([]byte{rec.Type}) + rec.Owner + "\x00" + string(rec.Payload)
}

// Node wraps a rack with hint queues and a streamer. It embeds the rack, so
// it serves the full Backend surface in-process, and it implements
// transport.ReplicaHandler for serving over the wire.
type Node struct {
	*broker.Rack
	cfg Config

	mu     sync.Mutex
	queues map[string]*hintQueue
	peers  map[string]string
	stats  broker.ReplicationStats

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// Wrap builds a Node over an existing rack. The node takes ownership: its
// Close stops the streamer and closes the rack.
func Wrap(rack *broker.Rack, cfg Config) *Node {
	if cfg.MaxHintsPerDest == 0 {
		cfg.MaxHintsPerDest = DefaultMaxHintsPerDest
	}
	if cfg.StreamInterval == 0 {
		cfg.StreamInterval = DefaultStreamInterval
	}
	if cfg.StreamBatch == 0 {
		cfg.StreamBatch = DefaultStreamBatch
	}
	if cfg.Dial == nil {
		opts := transport.Options{CallTimeout: 10 * time.Second, Token: cfg.Token, TLS: cfg.TLS}
		cfg.Dial = func(addr string) (HandoffTarget, error) {
			return transport.DialMux(addr, opts)
		}
	}
	n := &Node{
		Rack:   rack,
		cfg:    cfg,
		queues: make(map[string]*hintQueue),
		peers:  make(map[string]string),
		closed: make(chan struct{}),
	}
	for name, addr := range cfg.Peers {
		n.peers[name] = addr
	}
	if cfg.StreamInterval > 0 {
		n.wg.Add(1)
		go n.streamer()
	}
	return n
}

// Close stops the streamer and closes the underlying rack.
func (n *Node) Close() error {
	n.closeOnce.Do(func() { close(n.closed) })
	n.wg.Wait()
	return n.Rack.Close()
}

// Hint queues handoff records for dest, resolving RecRepair records against
// this rack's own bottles first. Hints addressed to this node apply locally.
// It returns the number of records accepted (queued or applied); the rest
// were shed against the queue bound or named bottles this rack no longer
// holds.
//
// Ownership stamping happens here, on the queueing rack: a RecSubmit's Owner
// is always the caller's authenticated identity (never the client-supplied
// field — a caller can only queue bottles as itself), and a RecRepair's
// resolved copy carries the owner this rack recorded at submit time. The
// destination racks the converged bottle under that identity, so replication
// never widens who may drain or remove it.
func (n *Node) Hint(ctx context.Context, dest string, recs []broker.HandoffRecord) (int, error) {
	caller := broker.IdentityFromContext(ctx)
	resolved := make([]broker.HandoffRecord, 0, len(recs))
	for _, rec := range recs {
		if rec.Type != broker.RecRepair {
			if rec.Type == broker.RecSubmit {
				rec.Owner = caller
			}
			resolved = append(resolved, rec)
			continue
		}
		// Read-repair: ship our own copy of the named bottle. A bottle we no
		// longer hold (expired, removed) needs no repair.
		raw, owner, replies, ok := n.Rack.PeekBottle(string(rec.Payload))
		if !ok {
			continue
		}
		resolved = append(resolved, broker.HandoffRecord{Type: broker.RecSubmit, Owner: owner, Payload: raw})
		id := broker.UntagID(string(rec.Payload))
		for _, rep := range replies {
			resolved = append(resolved, broker.HandoffRecord{
				Type: broker.RecReply, Payload: broker.MarshalReplyPost(id, rep),
			})
		}
	}
	if dest == n.cfg.Self {
		return n.Handoff(ctx, resolved)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	q := n.queues[dest]
	if q == nil {
		q = &hintQueue{keys: make(map[string]struct{})}
		n.queues[dest] = q
	}
	accepted := 0
	for _, rec := range resolved {
		key := recKey(rec)
		if _, dup := q.keys[key]; dup {
			accepted++ // already pending: the hint is covered
			continue
		}
		if len(q.recs) >= n.cfg.MaxHintsPerDest {
			n.stats.HintsDropped++
			continue
		}
		q.keys[key] = struct{}{}
		q.recs = append(q.recs, rec)
		n.stats.HintsQueued++
		accepted++
	}
	return accepted, nil
}

// Handoff applies records handed off by a peer (or hinted to self). Records
// apply idempotently: duplicate or expired submits, replies to bottles no
// longer racked and removes of absent bottles all count as applied — the
// state they wanted is already true (or moot). It returns the applied count;
// the error is non-nil only when the rack itself is failing.
func (n *Node) Handoff(ctx context.Context, recs []broker.HandoffRecord) (int, error) {
	applied := 0
	for _, rec := range recs {
		var err error
		switch rec.Type {
		case broker.RecSubmit:
			// Rack the converged copy under the identity that submitted the
			// original, not the peer relaying it: ownership checks on Fetch
			// and Remove must give the same answer on every replica.
			_, err = n.Rack.Submit(broker.WithIdentity(ctx, rec.Owner), rec.Payload)
			if errors.Is(err, broker.ErrDuplicateBottle) || errors.Is(err, core.ErrExpired) {
				err = nil
			}
		case broker.RecReply:
			var id string
			var raw []byte
			if id, raw, err = broker.UnmarshalReplyPost(rec.Payload); err == nil {
				err = n.Rack.Reply(ctx, id, raw)
			}
			if errors.Is(err, broker.ErrUnknownBottle) {
				err = nil
			}
		case broker.RecRemove:
			_, err = n.Rack.Remove(ctx, string(rec.Payload))
		default:
			// Unknown record types (a newer peer) are skipped, not fatal.
			continue
		}
		if err != nil {
			return applied, err
		}
		applied++
	}
	n.mu.Lock()
	n.stats.HandoffApplied += uint64(applied)
	n.mu.Unlock()
	return applied, nil
}

// SetPeer maps a member name to a dial address.
func (n *Node) SetPeer(name, addr string) error {
	if name == "" || addr == "" {
		return errors.New("replica: peer name and address must be non-empty")
	}
	n.mu.Lock()
	n.peers[name] = addr
	n.mu.Unlock()
	return nil
}

// RemovePeer drops a member from the peer table along with any hints queued
// for it — a removed member is never coming back under that name.
func (n *Node) RemovePeer(name string) error {
	n.mu.Lock()
	if q := n.queues[name]; q != nil {
		n.stats.HintsDropped += uint64(len(q.recs))
		delete(n.queues, name)
	}
	delete(n.peers, name)
	n.mu.Unlock()
	return nil
}

// Peers snapshots the peer table.
func (n *Node) Peers() map[string]string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]string, len(n.peers))
	for k, v := range n.peers {
		out[k] = v
	}
	return out
}

// ReplicaStats snapshots the node's replication counters.
func (n *Node) ReplicaStats() broker.ReplicationStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Pending reports the total records queued across destinations.
func (n *Node) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	for _, q := range n.queues {
		total += len(q.recs)
	}
	return total
}

// streamer periodically tries to deliver every queued destination.
func (n *Node) streamer() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.StreamInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.StreamInterval)
			n.Flush(ctx)
			cancel()
		case <-n.closed:
			return
		}
	}
}

// Flush synchronously attempts one delivery pass over every destination with
// queued hints, returning the number of records streamed. Destinations that
// stay unreachable keep their queues; the error is the last dial or delivery
// failure (nil when every queue drained or nothing was pending).
func (n *Node) Flush(ctx context.Context) (int, error) {
	n.mu.Lock()
	dests := make([]string, 0, len(n.queues))
	for dest, q := range n.queues {
		if len(q.recs) > 0 {
			dests = append(dests, dest)
		}
	}
	n.mu.Unlock()
	streamed := 0
	var lastErr error
	for _, dest := range dests {
		sent, err := n.flushDest(ctx, dest)
		streamed += sent
		if err != nil {
			lastErr = err
		}
	}
	return streamed, lastErr
}

// flushDest drains one destination's queue in StreamBatch rounds over a
// single connection.
func (n *Node) flushDest(ctx context.Context, dest string) (int, error) {
	addr := n.dialAddr(dest)
	if addr == "" {
		// No route yet: the peer table doesn't know dest and its name is not
		// itself dialable. Keep the hints; membership may catch up.
		return 0, nil
	}
	target, err := n.cfg.Dial(addr)
	if err != nil {
		return 0, err
	}
	defer target.Close()
	streamed := 0
	for {
		n.mu.Lock()
		q := n.queues[dest]
		if q == nil || len(q.recs) == 0 {
			n.mu.Unlock()
			return streamed, nil
		}
		batch := q.recs
		if len(batch) > n.cfg.StreamBatch {
			batch = batch[:n.cfg.StreamBatch]
		}
		// Copied out so the send happens outside the lock; only this method
		// removes from the front, so the slice stays stable meanwhile.
		batch = append([]broker.HandoffRecord(nil), batch...)
		n.mu.Unlock()
		if _, err := target.Handoff(ctx, batch); err != nil {
			return streamed, err
		}
		n.mu.Lock()
		q.recs = q.recs[len(batch):]
		for _, rec := range batch {
			delete(q.keys, recKey(rec))
		}
		n.stats.HintsStreamed += uint64(len(batch))
		n.mu.Unlock()
		streamed += len(batch)
	}
}

// dialAddr resolves a destination name to a dial address: the peer table
// first, else the name itself when it looks dialable (host:port), else none.
func (n *Node) dialAddr(dest string) string {
	n.mu.Lock()
	addr := n.peers[dest]
	n.mu.Unlock()
	if addr != "" {
		return addr
	}
	if strings.Contains(dest, ":") {
		return dest
	}
	return ""
}
