package replica

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"sealedbottle/internal/attr"
	"sealedbottle/internal/broker"
	"sealedbottle/internal/broker/transport"
	"sealedbottle/internal/core"
)

type detReader struct{ rng *rand.Rand }

func (d *detReader) Read(p []byte) (int, error) { return d.rng.Read(p) }

func buildRaw(tb testing.TB, seed int64) ([]byte, *core.RequestPackage) {
	tb.Helper()
	built, err := core.BuildRequest(core.RequestSpec{
		Necessary: []attr.Attribute{attr.MustNew("interest", "chess")},
	}, core.BuildOptions{
		Origin: "alice",
		Rand:   &detReader{rng: rand.New(rand.NewSource(seed))},
	})
	if err != nil {
		tb.Fatal(err)
	}
	raw, err := built.Package.Marshal()
	if err != nil {
		tb.Fatal(err)
	}
	return raw, built.Package
}

func newNode(tb testing.TB, self string, cfg Config) *Node {
	tb.Helper()
	cfg.Self = self
	if cfg.StreamInterval == 0 {
		cfg.StreamInterval = -1 // tests drive Flush explicitly
	}
	n := Wrap(broker.New(broker.Config{Shards: 2, ReapInterval: -1}), cfg)
	tb.Cleanup(func() { n.Close() })
	return n
}

func TestHintQueueDedupAndBound(t *testing.T) {
	n := newNode(t, "rack-0", Config{MaxHintsPerDest: 2})
	ctx := context.Background()
	rec1 := broker.HandoffRecord{Type: broker.RecRemove, Payload: []byte("a")}
	rec2 := broker.HandoffRecord{Type: broker.RecRemove, Payload: []byte("b")}
	rec3 := broker.HandoffRecord{Type: broker.RecRemove, Payload: []byte("c")}

	if got, err := n.Hint(ctx, "rack-1", []broker.HandoffRecord{rec1, rec1, rec2}); err != nil || got != 3 {
		t.Fatalf("Hint = %d, %v; want 3 accepted (duplicate covered)", got, err)
	}
	if n.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2 (duplicate collapsed)", n.Pending())
	}
	// Queue is at its bound: a third distinct record is shed.
	if got, err := n.Hint(ctx, "rack-1", []broker.HandoffRecord{rec3}); err != nil || got != 0 {
		t.Fatalf("Hint past bound = %d, %v; want 0 accepted", got, err)
	}
	st := n.ReplicaStats()
	if st.HintsQueued != 2 || st.HintsDropped != 1 {
		t.Fatalf("stats = %+v, want 2 queued / 1 dropped", st)
	}
}

func TestHintToSelfAppliesLocally(t *testing.T) {
	n := newNode(t, "rack-0", Config{})
	raw, pkg := buildRaw(t, 1)
	got, err := n.Hint(context.Background(), "rack-0", []broker.HandoffRecord{{Type: broker.RecSubmit, Payload: raw}})
	if err != nil || got != 1 {
		t.Fatalf("Hint to self = %d, %v; want 1 applied", got, err)
	}
	if n.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0 (applied, not queued)", n.Pending())
	}
	if _, _, _, ok := n.PeekBottle(pkg.ID); !ok {
		t.Fatal("self-hinted bottle not racked")
	}
}

func TestHandoffIdempotent(t *testing.T) {
	n := newNode(t, "rack-0", Config{})
	ctx := context.Background()
	raw, pkg := buildRaw(t, 2)
	rep := (&core.Reply{RequestID: pkg.ID, From: "bob", SentAt: time.Now()}).Marshal()
	ghostRep := (&core.Reply{RequestID: "ghost", From: "bob", SentAt: time.Now()}).Marshal()
	recs := []broker.HandoffRecord{
		{Type: broker.RecSubmit, Payload: raw},
		{Type: broker.RecReply, Payload: broker.MarshalReplyPost(pkg.ID, rep)},
		{Type: broker.RecReply, Payload: broker.MarshalReplyPost("ghost", ghostRep)}, // unknown bottle: moot
		{Type: broker.RecRemove, Payload: []byte("ghost")},                           // absent bottle: moot
		{Type: 99, Payload: []byte("future")},                                        // unknown type: skipped
	}
	applied, err := n.Handoff(ctx, recs)
	if err != nil || applied != 4 {
		t.Fatalf("Handoff = %d, %v; want 4 applied", applied, err)
	}
	// Re-delivery of the same batch converges instead of failing.
	if _, err := n.Handoff(ctx, recs); err != nil {
		t.Fatalf("re-delivered Handoff errored: %v", err)
	}
	if got, err := n.Fetch(ctx, pkg.ID); err != nil || len(got) != 2 {
		t.Fatalf("Fetch = %d replies, %v; want the original and re-delivered reply", len(got), err)
	}
}

func TestRepairHintResolvesFromOwnCopy(t *testing.T) {
	n := newNode(t, "rack-0", Config{})
	ctx := context.Background()
	raw, pkg := buildRaw(t, 3)
	if _, err := n.Submit(ctx, raw); err != nil {
		t.Fatal(err)
	}
	rep := (&core.Reply{RequestID: pkg.ID, From: "bob", SentAt: time.Now()}).Marshal()
	if err := n.Reply(ctx, pkg.ID, rep); err != nil {
		t.Fatal(err)
	}
	got, err := n.Hint(ctx, "rack-1", []broker.HandoffRecord{
		{Type: broker.RecRepair, Payload: []byte(pkg.ID)},
		{Type: broker.RecRepair, Payload: []byte("not-held")}, // silently droppable
	})
	if err != nil || got != 2 {
		t.Fatalf("repair Hint = %d, %v; want 2 (submit + reply)", got, err)
	}
	if n.Pending() != 2 {
		t.Fatalf("Pending = %d, want resolved submit + reply records", n.Pending())
	}
}

// localTarget delivers handoff batches straight into a peer node's handler,
// carrying the rack-to-rack identity the replica channel would pin.
type localTarget struct{ n *Node }

func (l localTarget) Handoff(ctx context.Context, recs []broker.HandoffRecord) (int, error) {
	return l.n.Handoff(broker.WithIdentity(ctx, "rack:rack-0"), recs)
}
func (l localTarget) Close() error { return nil }

// TestHandoffPreservesOwnership pins the identity layer's replication
// contract: a bottle converging onto a replica via hinted handoff answers to
// its original submitter — not to the rack relaying it, and not to whatever
// Owner the hinting client claims.
func TestHandoffPreservesOwnership(t *testing.T) {
	ctx := context.Background()
	dst := newNode(t, "rack-1", Config{})
	src := newNode(t, "rack-0", Config{
		Peers: map[string]string{"rack-1": "pipe:rack-1"},
		Dial:  func(string) (HandoffTarget, error) { return localTarget{dst}, nil },
	})

	// alice's bottle reached rack-0 only; her ring queues the missed replica
	// write as a hint — with a forged Owner the queueing rack must ignore.
	raw, pkg := buildRaw(t, 7)
	aliceCtx := broker.WithIdentity(ctx, "alice")
	if _, err := src.Submit(aliceCtx, raw); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Hint(aliceCtx, "rack-1", []broker.HandoffRecord{
		{Type: broker.RecSubmit, Owner: "mallory", Payload: raw},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if _, owner, _, ok := dst.PeekBottle(pkg.ID); !ok || owner != "alice" {
		t.Fatalf("converged bottle owner = %q (held %v), want alice", owner, ok)
	}
	if _, err := dst.Fetch(broker.WithIdentity(ctx, "mallory"), pkg.ID); !errors.Is(err, broker.ErrUnauthorized) {
		t.Fatalf("imposter fetch on the converged replica = %v, want ErrUnauthorized", err)
	}
	if _, err := dst.Fetch(aliceCtx, pkg.ID); err != nil {
		t.Fatalf("owner fetch on the converged replica: %v", err)
	}

	// Read-repair resolves ownership from the holding rack's own records even
	// when a third party (a sweeper noticing divergence) queues the repair.
	raw2, pkg2 := buildRaw(t, 8)
	if _, err := src.Submit(aliceCtx, raw2); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Hint(broker.WithIdentity(ctx, "sweeper"), "rack-1", []broker.HandoffRecord{
		{Type: broker.RecRepair, Payload: []byte(pkg2.ID)},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if _, owner, _, ok := dst.PeekBottle(pkg2.ID); !ok || owner != "alice" {
		t.Fatalf("read-repaired bottle owner = %q (held %v), want alice", owner, ok)
	}
}

func TestPeerTableAdmin(t *testing.T) {
	n := newNode(t, "rack-0", Config{Peers: map[string]string{"rack-1": "a:1"}})
	if err := n.SetPeer("rack-2", "b:2"); err != nil {
		t.Fatal(err)
	}
	if err := n.SetPeer("", "x"); err == nil {
		t.Fatal("empty peer name accepted")
	}
	if got := n.Peers(); len(got) != 2 || got["rack-1"] != "a:1" || got["rack-2"] != "b:2" {
		t.Fatalf("Peers = %v", got)
	}
	// Removing a peer sheds its queued hints.
	if _, err := n.Hint(context.Background(), "rack-1", []broker.HandoffRecord{{Type: broker.RecRemove, Payload: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	if err := n.RemovePeer("rack-1"); err != nil {
		t.Fatal(err)
	}
	if n.Pending() != 0 {
		t.Fatalf("Pending = %d after RemovePeer, want 0", n.Pending())
	}
	if st := n.ReplicaStats(); st.HintsDropped != 1 {
		t.Fatalf("HintsDropped = %d, want 1", st.HintsDropped)
	}
}

// TestStreamEndToEnd runs the full handoff loop over the wire: rack-0 queues
// hints while rack-1 is down, rack-1 comes up, a flush streams the records
// through OpHandoff, and rack-1 converges to holding the bottle and reply.
func TestStreamEndToEnd(t *testing.T) {
	ctx := context.Background()

	// rack-1 comes up behind a pipe listener with its own replica handler.
	n1 := newNode(t, "rack-1", Config{})
	l := transport.ListenPipe()
	srv := transport.NewServer(n1.Rack, transport.ServerOptions{Replica: n1})
	go srv.Serve(l)
	defer func() { l.Close(); srv.Close() }()

	up := false
	n0 := newNode(t, "rack-0", Config{
		Peers:       map[string]string{"rack-1": "pipe"},
		StreamBatch: 1, // force multiple delivery round trips
		Dial: func(addr string) (HandoffTarget, error) {
			if !up {
				return nil, errors.New("peer down")
			}
			conn, err := l.Dial()
			if err != nil {
				return nil, err
			}
			return transport.NewMux(conn)
		},
	})

	raw, pkg := buildRaw(t, 4)
	rep := (&core.Reply{RequestID: pkg.ID, From: "bob", SentAt: time.Now()}).Marshal()
	if _, err := n0.Hint(ctx, "rack-1", []broker.HandoffRecord{
		{Type: broker.RecSubmit, Payload: raw},
		{Type: broker.RecReply, Payload: broker.MarshalReplyPost(pkg.ID, rep)},
	}); err != nil {
		t.Fatal(err)
	}

	// While the peer is down the queue survives a failed pass.
	if sent, err := n0.Flush(ctx); err == nil || sent != 0 {
		t.Fatalf("Flush against down peer = %d, %v; want 0 and an error", sent, err)
	}
	if n0.Pending() != 2 {
		t.Fatalf("Pending = %d after failed flush, want 2", n0.Pending())
	}

	up = true
	if sent, err := n0.Flush(ctx); err != nil || sent != 2 {
		t.Fatalf("Flush = %d, %v; want 2 streamed", sent, err)
	}
	if n0.Pending() != 0 {
		t.Fatalf("Pending = %d after flush, want 0", n0.Pending())
	}
	if got, err := n1.Fetch(ctx, pkg.ID); err != nil || len(got) != 1 {
		t.Fatalf("rack-1 Fetch = %d replies, %v; want converged bottle with 1 reply", len(got), err)
	}
	st0, st1 := n0.ReplicaStats(), n1.ReplicaStats()
	if st0.HintsStreamed != 2 || st1.HandoffApplied != 2 {
		t.Fatalf("counters: streamer %+v, receiver %+v", st0, st1)
	}
}

// TestBackgroundStreamer proves the ticker path delivers without explicit
// Flush calls.
func TestBackgroundStreamer(t *testing.T) {
	n1 := newNode(t, "rack-1", Config{})
	l := transport.ListenPipe()
	srv := transport.NewServer(n1.Rack, transport.ServerOptions{Replica: n1})
	go srv.Serve(l)
	defer func() { l.Close(); srv.Close() }()

	n0 := newNode(t, "rack-0", Config{
		Peers:          map[string]string{"rack-1": "pipe"},
		StreamInterval: 10 * time.Millisecond,
		Dial: func(addr string) (HandoffTarget, error) {
			conn, err := l.Dial()
			if err != nil {
				return nil, err
			}
			return transport.NewMux(conn)
		},
	})

	raw, pkg := buildRaw(t, 5)
	if _, err := n0.Hint(context.Background(), "rack-1", []broker.HandoffRecord{{Type: broker.RecSubmit, Payload: raw}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, _, _, ok := n1.PeekBottle(pkg.ID); ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background streamer never delivered the hint")
}
