// Package paillier implements the Paillier additively homomorphic
// cryptosystem from scratch on math/big. It is the asymmetric substrate of
// the FNP04 private-set-intersection baseline and the private dot-product
// baseline that the paper compares against (Table III): Enc(a)·Enc(b) =
// Enc(a+b) and Enc(a)^k = Enc(k·a).
//
// The implementation is for reproducing the paper's baselines and cost
// comparisons; it has not been hardened for production use.
package paillier

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// MinimumBits is the smallest modulus size accepted, to keep accidental toy
// keys out of benchmarks while still allowing fast test keys.
const MinimumBits = 256

//nolint:gochecknoglobals // small immutable big.Int constants.
var (
	one = big.NewInt(1)
	two = big.NewInt(2)
)

// PublicKey is a Paillier public key (n, g) with g = n+1.
type PublicKey struct {
	// N is the modulus p·q.
	N *big.Int
	// NSquared caches n².
	NSquared *big.Int
	// G is the generator n+1.
	G *big.Int
}

// PrivateKey holds the decryption trapdoor.
type PrivateKey struct {
	PublicKey
	// Lambda is lcm(p-1, q-1).
	Lambda *big.Int
	// Mu is (L(g^λ mod n²))⁻¹ mod n.
	Mu *big.Int
}

// GenerateKey creates a Paillier key pair with an n of the given bit length.
func GenerateKey(rng io.Reader, bits int) (*PrivateKey, error) {
	if bits < MinimumBits {
		return nil, fmt.Errorf("paillier: modulus must be at least %d bits, got %d", MinimumBits, bits)
	}
	if rng == nil {
		rng = rand.Reader
	}
	for {
		p, err := rand.Prime(rng, bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generating p: %w", err)
		}
		q, err := rand.Prime(rng, bits-bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generating q: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		pMinus1 := new(big.Int).Sub(p, one)
		qMinus1 := new(big.Int).Sub(q, one)
		gcd := new(big.Int).GCD(nil, nil, pMinus1, qMinus1)
		lambda := new(big.Int).Div(new(big.Int).Mul(pMinus1, qMinus1), gcd)

		nSquared := new(big.Int).Mul(n, n)
		g := new(big.Int).Add(n, one)
		// mu = (L(g^lambda mod n^2))^-1 mod n, with L(u) = (u-1)/n.
		u := new(big.Int).Exp(g, lambda, nSquared)
		l := lFunction(u, n)
		mu := new(big.Int).ModInverse(l, n)
		if mu == nil {
			continue
		}
		return &PrivateKey{
			PublicKey: PublicKey{N: n, NSquared: nSquared, G: g},
			Lambda:    lambda,
			Mu:        mu,
		}, nil
	}
}

func lFunction(u, n *big.Int) *big.Int {
	return new(big.Int).Div(new(big.Int).Sub(u, one), n)
}

// Ciphertext is a Paillier ciphertext (an element of Z*_{n²}).
type Ciphertext struct {
	C *big.Int
}

// Errors returned by encryption and decryption.
var (
	// ErrMessageRange indicates a plaintext outside [0, n).
	ErrMessageRange = errors.New("paillier: message outside [0, n)")
	// ErrInvalidCiphertext indicates a ciphertext outside Z_{n²}.
	ErrInvalidCiphertext = errors.New("paillier: invalid ciphertext")
)

// Encrypt encrypts m ∈ [0, n) under the public key.
func (pk *PublicKey) Encrypt(rng io.Reader, m *big.Int) (*Ciphertext, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, ErrMessageRange
	}
	if rng == nil {
		rng = rand.Reader
	}
	r, err := randomCoprime(rng, pk.N)
	if err != nil {
		return nil, err
	}
	// c = g^m · r^n mod n²; with g = n+1, g^m = 1 + m·n mod n².
	gm := new(big.Int).Mod(new(big.Int).Add(one, new(big.Int).Mul(m, pk.N)), pk.NSquared)
	rn := new(big.Int).Exp(r, pk.N, pk.NSquared)
	c := new(big.Int).Mod(new(big.Int).Mul(gm, rn), pk.NSquared)
	return &Ciphertext{C: c}, nil
}

// EncryptInt64 is a convenience wrapper for small plaintexts.
func (pk *PublicKey) EncryptInt64(rng io.Reader, m int64) (*Ciphertext, error) {
	v := big.NewInt(m)
	if m < 0 {
		v.Mod(v, pk.N)
	}
	return pk.Encrypt(rng, v)
}

// Decrypt recovers the plaintext of a ciphertext.
func (sk *PrivateKey) Decrypt(ct *Ciphertext) (*big.Int, error) {
	if ct == nil || ct.C == nil || ct.C.Sign() <= 0 || ct.C.Cmp(sk.NSquared) >= 0 {
		return nil, ErrInvalidCiphertext
	}
	u := new(big.Int).Exp(ct.C, sk.Lambda, sk.NSquared)
	l := lFunction(u, sk.N)
	m := new(big.Int).Mod(new(big.Int).Mul(l, sk.Mu), sk.N)
	return m, nil
}

// Add returns a ciphertext of the sum of the two plaintexts.
func (pk *PublicKey) Add(a, b *Ciphertext) *Ciphertext {
	return &Ciphertext{C: new(big.Int).Mod(new(big.Int).Mul(a.C, b.C), pk.NSquared)}
}

// AddPlain returns a ciphertext of (plaintext of a) + m.
func (pk *PublicKey) AddPlain(a *Ciphertext, m *big.Int) *Ciphertext {
	gm := new(big.Int).Mod(new(big.Int).Add(one, new(big.Int).Mul(new(big.Int).Mod(m, pk.N), pk.N)), pk.NSquared)
	return &Ciphertext{C: new(big.Int).Mod(new(big.Int).Mul(a.C, gm), pk.NSquared)}
}

// ScalarMul returns a ciphertext of k · (plaintext of a).
func (pk *PublicKey) ScalarMul(a *Ciphertext, k *big.Int) *Ciphertext {
	exp := new(big.Int).Mod(k, pk.N)
	return &Ciphertext{C: new(big.Int).Exp(a.C, exp, pk.NSquared)}
}

// Rerandomize multiplies a ciphertext by a fresh encryption of zero, hiding
// which homomorphic operations produced it.
func (pk *PublicKey) Rerandomize(rng io.Reader, a *Ciphertext) (*Ciphertext, error) {
	zero, err := pk.Encrypt(rng, big.NewInt(0))
	if err != nil {
		return nil, err
	}
	return pk.Add(a, zero), nil
}

// randomCoprime draws r ∈ [1, n) with gcd(r, n) = 1.
func randomCoprime(rng io.Reader, n *big.Int) (*big.Int, error) {
	for {
		r, err := rand.Int(rng, n)
		if err != nil {
			return nil, fmt.Errorf("paillier: sampling randomizer: %w", err)
		}
		if r.Cmp(two) < 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, n).Cmp(one) == 0 {
			return r, nil
		}
	}
}
