package paillier

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"
	"testing/quick"
)

// testKey generates a small (fast) key once per test binary.
func testKey(tb testing.TB) *PrivateKey {
	tb.Helper()
	key, err := GenerateKey(rand.Reader, 512)
	if err != nil {
		tb.Fatal(err)
	}
	return key
}

func TestGenerateKeyValidation(t *testing.T) {
	if _, err := GenerateKey(rand.Reader, 128); err == nil {
		t.Error("tiny modulus should be rejected")
	}
	key := testKey(t)
	if key.N.BitLen() < 500 {
		t.Errorf("modulus only %d bits", key.N.BitLen())
	}
	if new(big.Int).Mul(key.N, key.N).Cmp(key.NSquared) != 0 {
		t.Error("NSquared is not N²")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	key := testKey(t)
	for _, m := range []int64{0, 1, 42, 65535, 1 << 40} {
		ct, err := key.EncryptInt64(rand.Reader, m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := key.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != m {
			t.Errorf("Decrypt(Encrypt(%d)) = %v", m, got)
		}
	}
}

func TestEncryptionIsRandomized(t *testing.T) {
	key := testKey(t)
	a, _ := key.EncryptInt64(rand.Reader, 7)
	b, _ := key.EncryptInt64(rand.Reader, 7)
	if a.C.Cmp(b.C) == 0 {
		t.Error("two encryptions of the same plaintext should differ")
	}
}

func TestEncryptRange(t *testing.T) {
	key := testKey(t)
	if _, err := key.Encrypt(rand.Reader, new(big.Int).Neg(big.NewInt(1))); err != ErrMessageRange {
		t.Error("negative plaintext should be rejected")
	}
	if _, err := key.Encrypt(rand.Reader, key.N); err != ErrMessageRange {
		t.Error("plaintext = n should be rejected")
	}
}

func TestDecryptRejectsBadCiphertext(t *testing.T) {
	key := testKey(t)
	if _, err := key.Decrypt(nil); err == nil {
		t.Error("nil ciphertext should fail")
	}
	if _, err := key.Decrypt(&Ciphertext{C: big.NewInt(0)}); err == nil {
		t.Error("zero ciphertext should fail")
	}
	if _, err := key.Decrypt(&Ciphertext{C: key.NSquared}); err == nil {
		t.Error("out-of-range ciphertext should fail")
	}
}

func TestHomomorphicAdd(t *testing.T) {
	key := testKey(t)
	a, _ := key.EncryptInt64(rand.Reader, 1234)
	b, _ := key.EncryptInt64(rand.Reader, 4321)
	sum, err := key.Decrypt(key.Add(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Int64() != 5555 {
		t.Errorf("homomorphic add = %v, want 5555", sum)
	}
}

func TestHomomorphicAddPlainAndScalarMul(t *testing.T) {
	key := testKey(t)
	a, _ := key.EncryptInt64(rand.Reader, 100)
	plus, err := key.Decrypt(key.AddPlain(a, big.NewInt(23)))
	if err != nil {
		t.Fatal(err)
	}
	if plus.Int64() != 123 {
		t.Errorf("AddPlain = %v, want 123", plus)
	}
	times, err := key.Decrypt(key.ScalarMul(a, big.NewInt(7)))
	if err != nil {
		t.Fatal(err)
	}
	if times.Int64() != 700 {
		t.Errorf("ScalarMul = %v, want 700", times)
	}
}

func TestRerandomizePreservesPlaintext(t *testing.T) {
	key := testKey(t)
	a, _ := key.EncryptInt64(rand.Reader, 99)
	b, err := key.Rerandomize(rand.Reader, a)
	if err != nil {
		t.Fatal(err)
	}
	if a.C.Cmp(b.C) == 0 {
		t.Error("rerandomization should change the ciphertext")
	}
	got, err := key.Decrypt(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 99 {
		t.Errorf("rerandomized plaintext = %v", got)
	}
}

// Property: Dec(Enc(a)·Enc(b)) = a+b and Dec(Enc(a)^k) = k·a for random
// small values (all mod n, but kept far below it here).
func TestHomomorphismProperty(t *testing.T) {
	key := testKey(t)
	rng := mrand.New(mrand.NewSource(1))
	f := func() bool {
		a := rng.Int63n(1 << 30)
		b := rng.Int63n(1 << 30)
		k := rng.Int63n(1 << 10)
		ca, err := key.EncryptInt64(rand.Reader, a)
		if err != nil {
			return false
		}
		cb, err := key.EncryptInt64(rand.Reader, b)
		if err != nil {
			return false
		}
		sum, err := key.Decrypt(key.Add(ca, cb))
		if err != nil || sum.Int64() != a+b {
			return false
		}
		prod, err := key.Decrypt(key.ScalarMul(ca, big.NewInt(k)))
		if err != nil || prod.Int64() != a*k {
			return false
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
