// Package dotproduct implements the private vector dot-product baseline used
// by the social-coordinate proximity matching approaches the paper compares
// against ([9], [12], [28]): Alice learns ⟨a, b⟩ and nothing else about b;
// Bob learns nothing about a. It is built on the Paillier cryptosystem.
package dotproduct

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"sealedbottle/internal/baseline/paillier"
)

// Errors returned by the protocol.
var (
	// ErrEmptyVector indicates a zero-length input vector.
	ErrEmptyVector = errors.New("dotproduct: empty vector")
	// ErrLengthMismatch indicates the two parties' vectors differ in length.
	ErrLengthMismatch = errors.New("dotproduct: vector length mismatch")
)

// Request is Alice's first message: her Paillier public key and the
// element-wise encryption of her vector.
type Request struct {
	// PublicKey is Alice's Paillier public key.
	PublicKey *paillier.PublicKey
	// Encrypted holds Enc(a_1), ..., Enc(a_m).
	Encrypted []*paillier.Ciphertext
}

// BuildRequest encrypts Alice's vector under her key. Negative entries are
// represented modulo n, so the final dot product must stay well below n/2 in
// absolute value — amply true for the interest-level vectors of [28].
func BuildRequest(rng io.Reader, key *paillier.PrivateKey, vector []int64) (*Request, error) {
	if len(vector) == 0 {
		return nil, ErrEmptyVector
	}
	enc := make([]*paillier.Ciphertext, len(vector))
	for i, v := range vector {
		m := big.NewInt(v)
		if v < 0 {
			m.Mod(m, key.N)
		}
		ct, err := key.Encrypt(rng, m)
		if err != nil {
			return nil, fmt.Errorf("dotproduct: encrypting element %d: %w", i, err)
		}
		enc[i] = ct
	}
	return &Request{PublicKey: &key.PublicKey, Encrypted: enc}, nil
}

// Respond is Bob's side: he computes Enc(Σ a_i·b_i) homomorphically without
// learning anything about a.
func Respond(rng io.Reader, req *Request, vector []int64) (*paillier.Ciphertext, error) {
	if req == nil || req.PublicKey == nil || len(req.Encrypted) == 0 {
		return nil, ErrEmptyVector
	}
	if len(vector) != len(req.Encrypted) {
		return nil, ErrLengthMismatch
	}
	pk := req.PublicKey
	var acc *paillier.Ciphertext
	for i, b := range vector {
		k := big.NewInt(b)
		if b < 0 {
			k.Mod(k, pk.N)
		}
		term := pk.ScalarMul(req.Encrypted[i], k)
		if acc == nil {
			acc = term
			continue
		}
		acc = pk.Add(acc, term)
	}
	return pk.Rerandomize(rng, acc)
}

// Finish decrypts Bob's response and maps the result back to a signed value.
func Finish(key *paillier.PrivateKey, response *paillier.Ciphertext) (int64, error) {
	if response == nil {
		return 0, errors.New("dotproduct: nil response")
	}
	m, err := key.Decrypt(response)
	if err != nil {
		return 0, err
	}
	// Values above n/2 represent negatives.
	half := new(big.Int).Rsh(key.N, 1)
	if m.Cmp(half) > 0 {
		m.Sub(m, key.N)
	}
	if !m.IsInt64() {
		return 0, errors.New("dotproduct: result does not fit in int64")
	}
	return m.Int64(), nil
}

// Run executes the whole protocol between the two vectors and returns the dot
// product from Alice's point of view.
func Run(rng io.Reader, keyBits int, alice, bob []int64) (int64, error) {
	if keyBits <= 0 {
		keyBits = 1024
	}
	key, err := paillier.GenerateKey(rng, keyBits)
	if err != nil {
		return 0, err
	}
	req, err := BuildRequest(rng, key, alice)
	if err != nil {
		return 0, err
	}
	resp, err := Respond(rng, req, bob)
	if err != nil {
		return 0, err
	}
	return Finish(key, resp)
}

// Plain computes the dot product in the clear (the ground-truth oracle used
// by tests and experiments).
func Plain(a, b []int64) (int64, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	var sum int64
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum, nil
}
