package dotproduct

import (
	"crypto/rand"
	"errors"
	"testing"
	"testing/quick"

	mrand "math/rand"

	"sealedbottle/internal/baseline/paillier"
)

const testKeyBits = 512

func testKey(tb testing.TB) *paillier.PrivateKey {
	tb.Helper()
	key, err := paillier.GenerateKey(rand.Reader, testKeyBits)
	if err != nil {
		tb.Fatal(err)
	}
	return key
}

func TestRunBasic(t *testing.T) {
	got, err := Run(rand.Reader, testKeyBits, []int64{1, 2, 3}, []int64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got != 32 {
		t.Errorf("dot product = %d, want 32", got)
	}
}

func TestRunWithNegativeEntries(t *testing.T) {
	got, err := Run(rand.Reader, testKeyBits, []int64{1, -5, 2}, []int64{2, 1, -3})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Plain([]int64{1, -5, 2}, []int64{2, 1, -3})
	if got != want {
		t.Errorf("dot product = %d, want %d", got, want)
	}
	if want >= 0 {
		t.Fatal("test case should exercise a negative result")
	}
}

func TestValidation(t *testing.T) {
	key := testKey(t)
	if _, err := BuildRequest(rand.Reader, key, nil); !errors.Is(err, ErrEmptyVector) {
		t.Error("empty vector should fail")
	}
	req, err := BuildRequest(rand.Reader, key, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Respond(rand.Reader, req, []int64{1}); !errors.Is(err, ErrLengthMismatch) {
		t.Error("length mismatch should fail")
	}
	if _, err := Respond(rand.Reader, nil, []int64{1}); err == nil {
		t.Error("nil request should fail")
	}
	if _, err := Finish(key, nil); err == nil {
		t.Error("nil response should fail")
	}
	if _, err := Plain([]int64{1}, []int64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Error("plain length mismatch should fail")
	}
}

func TestResponderLearnsNothingDirectly(t *testing.T) {
	key := testKey(t)
	req, err := BuildRequest(rand.Reader, key, []int64{9, 9, 9})
	if err != nil {
		t.Fatal(err)
	}
	for i, ct := range req.Encrypted {
		if ct.C.BitLen() < 100 {
			t.Errorf("element %d looks unencrypted", i)
		}
	}
	// Two encryptions of the same vector differ.
	req2, _ := BuildRequest(rand.Reader, key, []int64{9, 9, 9})
	if req.Encrypted[0].C.Cmp(req2.Encrypted[0].C) == 0 {
		t.Error("encryptions are not randomized")
	}
}

// Property: the private protocol agrees with the plaintext dot product for
// random vectors, reusing one key to keep the test fast.
func TestMatchesPlainProperty(t *testing.T) {
	key := testKey(t)
	rng := mrand.New(mrand.NewSource(2))
	f := func() bool {
		m := 1 + rng.Intn(6)
		a := make([]int64, m)
		b := make([]int64, m)
		for i := range a {
			a[i] = int64(rng.Intn(201) - 100)
			b[i] = int64(rng.Intn(201) - 100)
		}
		req, err := BuildRequest(rand.Reader, key, a)
		if err != nil {
			return false
		}
		resp, err := Respond(rand.Reader, req, b)
		if err != nil {
			return false
		}
		got, err := Finish(key, resp)
		if err != nil {
			return false
		}
		want, _ := Plain(a, b)
		return got == want
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
