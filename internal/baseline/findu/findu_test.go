package findu

import (
	"crypto/rand"
	"math/big"
	"sort"
	"sync"
	"testing"
)

// Generating a safe-prime group is slow, so tests share one 512-bit group.
//
//nolint:gochecknoglobals // test-only lazily-initialized shared fixture.
var (
	sharedGroupOnce sync.Once
	sharedGroup     *Group
	sharedGroupErr  error
)

func testGroup(tb testing.TB) *Group {
	tb.Helper()
	sharedGroupOnce.Do(func() {
		sharedGroup, sharedGroupErr = NewGroup(rand.Reader, 512)
	})
	if sharedGroupErr != nil {
		tb.Fatal(sharedGroupErr)
	}
	return sharedGroup
}

func TestNewGroupValidation(t *testing.T) {
	if _, err := NewGroup(rand.Reader, 100); err == nil {
		t.Error("tiny group should fail")
	}
	g := testGroup(t)
	if !g.P.ProbablyPrime(32) || !g.Q.ProbablyPrime(32) {
		t.Error("group parameters are not prime")
	}
	// p = 2q + 1.
	expect := new(big.Int).Add(new(big.Int).Lsh(g.Q, 1), big.NewInt(1))
	if g.P.Cmp(expect) != 0 {
		t.Error("p is not a safe prime over q")
	}
}

func TestPSIBasic(t *testing.T) {
	g := testGroup(t)
	a := []string{"tag:a", "tag:b", "tag:c", "tag:d"}
	b := []string{"tag:b", "tag:d", "tag:e"}
	got, err := PSI(rand.Reader, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	if len(got) != 2 || got[0] != "tag:b" || got[1] != "tag:d" {
		t.Fatalf("PSI = %v", got)
	}
}

func TestPSIDisjointAndIdentical(t *testing.T) {
	g := testGroup(t)
	if got, err := PSI(rand.Reader, g, []string{"tag:a"}, []string{"tag:z"}); err != nil || len(got) != 0 {
		t.Errorf("disjoint PSI = %v (err %v)", got, err)
	}
	set := []string{"tag:x", "tag:y", "tag:z"}
	got, err := PSI(rand.Reader, g, set, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("identical PSI = %v", got)
	}
}

func TestPCSIRevealsOnlyCardinality(t *testing.T) {
	g := testGroup(t)
	a := []string{"tag:a", "tag:b", "tag:c"}
	b := []string{"tag:b", "tag:c", "tag:d", "tag:e"}
	n, err := PCSI(rand.Reader, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("PCSI = %d, want 2", n)
	}
	if n, err := PCSI(rand.Reader, g, []string{"tag:a"}, []string{"tag:q"}); err != nil || n != 0 {
		t.Errorf("disjoint PCSI = %d (err %v)", n, err)
	}
}

func TestPartyValidation(t *testing.T) {
	g := testGroup(t)
	if _, err := NewParty(rand.Reader, nil, []string{"tag:a"}); err == nil {
		t.Error("nil group should fail")
	}
	if _, err := NewParty(rand.Reader, g, nil); err == nil {
		t.Error("empty set should fail")
	}
	p, err := NewParty(rand.Reader, g, []string{"tag:a"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Transform(nil, false); err == nil {
		t.Error("empty peer set should fail")
	}
	if _, err := p.Transform([]*big.Int{big.NewInt(0)}, false); err == nil {
		t.Error("malformed commitment should fail")
	}
	if _, err := p.Transform([]*big.Int{new(big.Int).Set(g.P)}, false); err == nil {
		t.Error("out-of-range commitment should fail")
	}
}

func TestCommitmentsHideElements(t *testing.T) {
	g := testGroup(t)
	// Two parties holding the same element produce different commitments
	// (different secrets), so observing a commitment does not identify the
	// attribute without the holder's secret.
	p1, _ := NewParty(rand.Reader, g, []string{"tag:secret"})
	p2, _ := NewParty(rand.Reader, g, []string{"tag:secret"})
	if p1.Commit()[0].Cmp(p2.Commit()[0]) == 0 {
		t.Error("independent parties produced identical commitments")
	}
	// The commitment is not the bare group hash either.
	if p1.Commit()[0].Cmp(g.hashToGroup("tag:secret")) == 0 {
		t.Error("commitment equals the unblinded hash")
	}
}

func TestCommutativityUnderlyingPSI(t *testing.T) {
	g := testGroup(t)
	a, _ := NewParty(rand.Reader, g, []string{"tag:x"})
	b, _ := NewParty(rand.Reader, g, []string{"tag:x"})
	ab, err := b.Transform(a.Commit(), false)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := a.Transform(b.Commit(), false)
	if err != nil {
		t.Fatal(err)
	}
	if ab[0].Cmp(ba[0]) != 0 {
		t.Error("double exponentiation is not commutative — PSI cannot work")
	}
}
