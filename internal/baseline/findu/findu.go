// Package findu implements a commutative-encryption (Diffie–Hellman style)
// private set intersection and private cardinality of set intersection,
// standing in for the FindU-class profile-matching baselines ("Advanced
// [14]", Veneta [23]) the paper compares against.
//
// Both parties hash their attributes into a prime-order subgroup and
// exponentiate with their private exponents; because exponentiation commutes,
// an element held by both parties ends up with the same double-exponentiated
// value on both sides. Returning the double-exponentiated set in order yields
// PSI (the querier learns which elements matched); returning it shuffled
// yields PCSI (only the cardinality is learned).
package findu

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sort"

	"sealedbottle/internal/crypt"
)

// Group is the shared cyclic group: the quadratic residues modulo a safe
// prime p.
type Group struct {
	// P is the safe prime modulus.
	P *big.Int
	// Q is the subgroup order (p−1)/2.
	Q *big.Int
}

// DefaultGroupBits is the modulus size used when generating a fresh group.
const DefaultGroupBits = 1024

// NewGroup generates a safe-prime group of the requested size. Group
// generation is expensive; reuse one group across protocol runs (it is a
// public parameter).
func NewGroup(rng io.Reader, bits int) (*Group, error) {
	if bits < 256 {
		return nil, errors.New("findu: group modulus must be at least 256 bits")
	}
	if rng == nil {
		rng = rand.Reader
	}
	for {
		q, err := rand.Prime(rng, bits-1)
		if err != nil {
			return nil, fmt.Errorf("findu: generating subgroup order: %w", err)
		}
		p := new(big.Int).Add(new(big.Int).Lsh(q, 1), big.NewInt(1))
		if p.ProbablyPrime(32) {
			return &Group{P: p, Q: q}, nil
		}
	}
}

// hashToGroup maps a canonical attribute string into the quadratic-residue
// subgroup by hashing and squaring.
func (g *Group) hashToGroup(canonical string) *big.Int {
	d := crypt.HashAttribute(canonical)
	v := new(big.Int).Mod(d.Big(), g.P)
	if v.Sign() == 0 {
		v.SetInt64(2)
	}
	return v.Mul(v, v).Mod(v, g.P)
}

// Party holds one side's secret exponent and attribute set.
type Party struct {
	group  *Group
	secret *big.Int
	set    []string
}

// NewParty creates a protocol party with a fresh secret exponent.
func NewParty(rng io.Reader, group *Group, set []string) (*Party, error) {
	if group == nil {
		return nil, errors.New("findu: nil group")
	}
	if len(set) == 0 {
		return nil, errors.New("findu: empty set")
	}
	if rng == nil {
		rng = rand.Reader
	}
	secret, err := rand.Int(rng, new(big.Int).Sub(group.Q, big.NewInt(2)))
	if err != nil {
		return nil, fmt.Errorf("findu: sampling secret: %w", err)
	}
	secret.Add(secret, big.NewInt(2)) // in [2, q)
	return &Party{group: group, secret: secret, set: append([]string(nil), set...)}, nil
}

// Commit returns this party's single-exponentiated set: H(x_i)^secret, in the
// order of the party's set.
func (p *Party) Commit() []*big.Int {
	out := make([]*big.Int, len(p.set))
	for i, s := range p.set {
		out[i] = new(big.Int).Exp(p.group.hashToGroup(s), p.secret, p.group.P)
	}
	return out
}

// Transform applies this party's secret on top of the peer's commitments,
// yielding the double-exponentiated values. When shuffle is true the output
// is returned in a canonical sorted order that destroys the positional
// correspondence — the PCSI (cardinality-only) variant.
func (p *Party) Transform(peerCommitments []*big.Int, shuffle bool) ([]*big.Int, error) {
	if len(peerCommitments) == 0 {
		return nil, errors.New("findu: empty peer commitment set")
	}
	out := make([]*big.Int, len(peerCommitments))
	for i, c := range peerCommitments {
		if c == nil || c.Sign() <= 0 || c.Cmp(p.group.P) >= 0 {
			return nil, errors.New("findu: malformed commitment")
		}
		out[i] = new(big.Int).Exp(c, p.secret, p.group.P)
	}
	if shuffle {
		sort.Slice(out, func(i, j int) bool { return out[i].Cmp(out[j]) < 0 })
	}
	return out, nil
}

// matchKeys renders double-exponentiated values as comparable map keys.
func matchKeys(values []*big.Int) map[string]int {
	out := make(map[string]int, len(values))
	for _, v := range values {
		out[v.String()]++
	}
	return out
}

// PSI runs the full protocol between two sets and returns, from party A's
// point of view, which of its elements are also held by party B.
func PSI(rng io.Reader, group *Group, aSet, bSet []string) ([]string, error) {
	a, err := NewParty(rng, group, aSet)
	if err != nil {
		return nil, err
	}
	b, err := NewParty(rng, group, bSet)
	if err != nil {
		return nil, err
	}
	// A -> B: A's commitments. B returns them double-exponentiated, keeping
	// the order so A can attribute matches to its own elements.
	aDouble, err := b.Transform(a.Commit(), false)
	if err != nil {
		return nil, err
	}
	// B -> A: B's commitments; A double-exponentiates them locally.
	bDouble, err := a.Transform(b.Commit(), true)
	if err != nil {
		return nil, err
	}
	bKeys := matchKeys(bDouble)
	var out []string
	for i, v := range aDouble {
		if bKeys[v.String()] > 0 {
			out = append(out, aSet[i])
		}
	}
	return out, nil
}

// PCSI runs the cardinality-only variant: party A learns only |A ∩ B|.
func PCSI(rng io.Reader, group *Group, aSet, bSet []string) (int, error) {
	a, err := NewParty(rng, group, aSet)
	if err != nil {
		return 0, err
	}
	b, err := NewParty(rng, group, bSet)
	if err != nil {
		return 0, err
	}
	// B shuffles A's double-exponentiated set, so A can count matches but not
	// attribute them to particular elements.
	aDouble, err := b.Transform(a.Commit(), true)
	if err != nil {
		return 0, err
	}
	bDouble, err := a.Transform(b.Commit(), true)
	if err != nil {
		return 0, err
	}
	bKeys := matchKeys(bDouble)
	count := 0
	for _, v := range aDouble {
		if bKeys[v.String()] > 0 {
			count++
			bKeys[v.String()]--
		}
	}
	return count, nil
}
