// Package fc10 implements the De Cristofaro–Tsudik practical private set
// intersection protocol with linear complexity (Financial Cryptography 2010),
// the "FC10 [7]" baseline of the paper's efficiency comparison. It is built
// on blind RSA signatures implemented directly on math/big.
//
// Protocol sketch: the server holds an RSA key (n, e, d) and publishes
// tags t_j = H'( H(s_j)^d mod n ) for its elements s_j. The client blinds
// each of its elements as H(c_i)·r_i^e mod n and sends them; the server
// raises every blinded value to d (a blind signature) and returns them; the
// client unblinds by multiplying with r_i⁻¹, obtaining H(c_i)^d, and checks
// whether H'(H(c_i)^d) appears among the server tags.
package fc10

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"sealedbottle/internal/crypt"
)

// DefaultKeyBits is the RSA modulus size used when unspecified.
const DefaultKeyBits = 1024

//nolint:gochecknoglobals // small immutable constants.
var (
	one          = big.NewInt(1)
	publicExp    = big.NewInt(65537)
	errEmptySet  = errors.New("fc10: empty input set")
	errMalformed = errors.New("fc10: malformed protocol message")
)

// hashToGroup maps an element's canonical string into Z*_n.
func hashToGroup(canonical string, n *big.Int) *big.Int {
	d := crypt.HashAttribute(canonical)
	v := new(big.Int).Mod(d.Big(), n)
	if v.Sign() == 0 {
		v.SetInt64(1)
	}
	return v
}

// tagOf computes the outer hash H'(·) of a signed element.
func tagOf(signed *big.Int) string {
	return crypt.HashBytes(signed.Bytes()).String()
}

// Server is the set holder that publishes signed tags and blind-signs client
// queries.
type Server struct {
	n, e, d *big.Int
	tags    map[string]struct{}
}

// NewServer generates the RSA key pair and precomputes the tag set.
func NewServer(rng io.Reader, keyBits int, set []string) (*Server, error) {
	if len(set) == 0 {
		return nil, errEmptySet
	}
	if keyBits <= 0 {
		keyBits = DefaultKeyBits
	}
	if rng == nil {
		rng = rand.Reader
	}
	n, d, err := generateRSA(rng, keyBits)
	if err != nil {
		return nil, err
	}
	s := &Server{n: n, e: new(big.Int).Set(publicExp), d: d, tags: make(map[string]struct{}, len(set))}
	for _, item := range set {
		h := hashToGroup(item, n)
		signed := new(big.Int).Exp(h, d, n)
		s.tags[tagOf(signed)] = struct{}{}
	}
	return s, nil
}

// generateRSA builds an RSA modulus whose totient is coprime with e = 65537.
func generateRSA(rng io.Reader, bits int) (n, d *big.Int, err error) {
	for {
		p, err := rand.Prime(rng, bits/2)
		if err != nil {
			return nil, nil, fmt.Errorf("fc10: generating p: %w", err)
		}
		q, err := rand.Prime(rng, bits-bits/2)
		if err != nil {
			return nil, nil, fmt.Errorf("fc10: generating q: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n = new(big.Int).Mul(p, q)
		phi := new(big.Int).Mul(new(big.Int).Sub(p, one), new(big.Int).Sub(q, one))
		d = new(big.Int).ModInverse(publicExp, phi)
		if d == nil {
			continue
		}
		return n, d, nil
	}
}

// PublicParams returns the server's public modulus and exponent.
func (s *Server) PublicParams() (n, e *big.Int) {
	return new(big.Int).Set(s.n), new(big.Int).Set(s.e)
}

// Tags returns the published tag set (order-free).
func (s *Server) Tags() map[string]struct{} {
	out := make(map[string]struct{}, len(s.tags))
	for t := range s.tags {
		out[t] = struct{}{}
	}
	return out
}

// BlindSign raises each blinded client element to the private exponent.
func (s *Server) BlindSign(blinded []*big.Int) ([]*big.Int, error) {
	if len(blinded) == 0 {
		return nil, errMalformed
	}
	out := make([]*big.Int, len(blinded))
	for i, b := range blinded {
		if b == nil || b.Sign() <= 0 || b.Cmp(s.n) >= 0 {
			return nil, errMalformed
		}
		out[i] = new(big.Int).Exp(b, s.d, s.n)
	}
	return out, nil
}

// Client is the querying party that learns which of its elements the server
// also holds.
type Client struct {
	n, e     *big.Int
	set      []string
	blinds   []*big.Int
	blinded  []*big.Int
	rngState io.Reader
}

// NewClient prepares and blinds the client's set under the server's public
// parameters.
func NewClient(rng io.Reader, n, e *big.Int, set []string) (*Client, error) {
	if len(set) == 0 {
		return nil, errEmptySet
	}
	if rng == nil {
		rng = rand.Reader
	}
	c := &Client{
		n:        new(big.Int).Set(n),
		e:        new(big.Int).Set(e),
		set:      append([]string(nil), set...),
		rngState: rng,
	}
	c.blinds = make([]*big.Int, len(set))
	c.blinded = make([]*big.Int, len(set))
	for i, item := range set {
		r, err := randomUnit(rng, n)
		if err != nil {
			return nil, err
		}
		c.blinds[i] = r
		h := hashToGroup(item, n)
		re := new(big.Int).Exp(r, e, n)
		c.blinded[i] = new(big.Int).Mod(new(big.Int).Mul(h, re), n)
	}
	return c, nil
}

// Blinded returns the client's first message.
func (c *Client) Blinded() []*big.Int {
	out := make([]*big.Int, len(c.blinded))
	copy(out, c.blinded)
	return out
}

// Intersect unblinds the server's signatures and matches tags, returning the
// canonical strings of the client's elements present in the server's set.
func (c *Client) Intersect(signed []*big.Int, serverTags map[string]struct{}) ([]string, error) {
	if len(signed) != len(c.set) {
		return nil, errMalformed
	}
	var out []string
	for i, sig := range signed {
		rInv := new(big.Int).ModInverse(c.blinds[i], c.n)
		if rInv == nil {
			return nil, errMalformed
		}
		unblinded := new(big.Int).Mod(new(big.Int).Mul(sig, rInv), c.n)
		if _, ok := serverTags[tagOf(unblinded)]; ok {
			out = append(out, c.set[i])
		}
	}
	return out, nil
}

// randomUnit draws r ∈ Z*_n.
func randomUnit(rng io.Reader, n *big.Int) (*big.Int, error) {
	for {
		r, err := rand.Int(rng, n)
		if err != nil {
			return nil, fmt.Errorf("fc10: sampling blinding factor: %w", err)
		}
		if r.Sign() <= 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, n).Cmp(one) == 0 {
			return r, nil
		}
	}
}

// Run executes the whole protocol and returns the intersection from the
// client's point of view.
func Run(rng io.Reader, keyBits int, clientSet, serverSet []string) ([]string, error) {
	server, err := NewServer(rng, keyBits, serverSet)
	if err != nil {
		return nil, err
	}
	n, e := server.PublicParams()
	client, err := NewClient(rng, n, e, clientSet)
	if err != nil {
		return nil, err
	}
	signed, err := server.BlindSign(client.Blinded())
	if err != nil {
		return nil, err
	}
	return client.Intersect(signed, server.Tags())
}
