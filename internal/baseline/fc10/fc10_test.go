package fc10

import (
	"crypto/rand"
	"math/big"
	"sort"
	"testing"
)

const testKeyBits = 512

func TestRunBasicIntersection(t *testing.T) {
	client := []string{"tag:a", "tag:b", "tag:c"}
	server := []string{"tag:b", "tag:c", "tag:d", "tag:e"}
	got, err := Run(rand.Reader, testKeyBits, client, server)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	want := []string{"tag:b", "tag:c"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("intersection = %v, want %v", got, want)
	}
}

func TestRunDisjointAndIdentical(t *testing.T) {
	if got, err := Run(rand.Reader, testKeyBits, []string{"tag:a"}, []string{"tag:z"}); err != nil || len(got) != 0 {
		t.Errorf("disjoint intersection = %v (err %v)", got, err)
	}
	set := []string{"tag:p", "tag:q"}
	if got, err := Run(rand.Reader, testKeyBits, set, set); err != nil || len(got) != 2 {
		t.Errorf("identical intersection = %v (err %v)", got, err)
	}
}

func TestServerValidation(t *testing.T) {
	if _, err := NewServer(rand.Reader, testKeyBits, nil); err == nil {
		t.Error("empty server set should fail")
	}
	server, err := NewServer(rand.Reader, testKeyBits, []string{"tag:x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(server.Tags()) != 1 {
		t.Error("tag set size wrong")
	}
	if _, err := server.BlindSign(nil); err == nil {
		t.Error("empty blind-sign batch should fail")
	}
	n, _ := server.PublicParams()
	if _, err := server.BlindSign([]*big.Int{new(big.Int).Set(n)}); err == nil {
		t.Error("out-of-range blinded value should fail")
	}
	if _, err := server.BlindSign([]*big.Int{nil}); err == nil {
		t.Error("nil blinded value should fail")
	}
}

func TestClientValidation(t *testing.T) {
	server, err := NewServer(rand.Reader, testKeyBits, []string{"tag:x"})
	if err != nil {
		t.Fatal(err)
	}
	n, e := server.PublicParams()
	if _, err := NewClient(rand.Reader, n, e, nil); err == nil {
		t.Error("empty client set should fail")
	}
	client, err := NewClient(rand.Reader, n, e, []string{"tag:x", "tag:y"})
	if err != nil {
		t.Fatal(err)
	}
	if len(client.Blinded()) != 2 {
		t.Error("blinded set size wrong")
	}
	if _, err := client.Intersect([]*big.Int{big.NewInt(1)}, server.Tags()); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestBlindingHidesElements(t *testing.T) {
	// The same client set blinded twice must produce different messages
	// (fresh blinding factors), so the server cannot link queries.
	server, err := NewServer(rand.Reader, testKeyBits, []string{"tag:x"})
	if err != nil {
		t.Fatal(err)
	}
	n, e := server.PublicParams()
	c1, err := NewClient(rand.Reader, n, e, []string{"tag:a"})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewClient(rand.Reader, n, e, []string{"tag:a"})
	if err != nil {
		t.Fatal(err)
	}
	if c1.Blinded()[0].Cmp(c2.Blinded()[0]) == 0 {
		t.Error("two blindings of the same element should differ")
	}
}

func TestTagsDoNotRevealPlainHashes(t *testing.T) {
	server, err := NewServer(rand.Reader, testKeyBits, []string{"tag:secret"})
	if err != nil {
		t.Fatal(err)
	}
	n, _ := server.PublicParams()
	plain := hashToGroup("tag:secret", n)
	for tag := range server.Tags() {
		if tag == tagOf(plain) {
			t.Error("published tag equals the hash of the plain element (no exponentiation applied)")
		}
	}
}

func TestMatchesPlainIntersection(t *testing.T) {
	cases := []struct {
		client, server []string
	}{
		{[]string{"tag:a", "tag:b", "tag:c"}, []string{"tag:a"}},
		{[]string{"tag:a"}, []string{"tag:a", "tag:b", "tag:c"}},
		{[]string{"tag:a", "tag:b"}, []string{"tag:b", "tag:a"}},
	}
	for _, tc := range cases {
		got, err := Run(rand.Reader, testKeyBits, tc.client, tc.server)
		if err != nil {
			t.Fatal(err)
		}
		want := map[string]bool{}
		for _, c := range tc.client {
			for _, s := range tc.server {
				if c == s {
					want[c] = true
				}
			}
		}
		if len(got) != len(want) {
			t.Errorf("client %v server %v: got %v", tc.client, tc.server, got)
		}
		for _, g := range got {
			if !want[g] {
				t.Errorf("unexpected element %q", g)
			}
		}
	}
}
