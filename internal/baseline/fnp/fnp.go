// Package fnp implements the Freedman–Nissim–Pinkas private set intersection
// protocol (EUROCRYPT 2004) via oblivious polynomial evaluation over the
// Paillier cryptosystem. It is the "FNP [10]" baseline of the paper's
// efficiency comparison (Tables III and VII).
//
// Protocol sketch: the client encodes its set X as the roots of a polynomial
// P(y) = Π (y − x_i) and sends the Paillier encryptions of P's coefficients.
// For each of its elements y_j, the server homomorphically evaluates
// Enc(r_j·P(y_j) + y_j) for a fresh random r_j. The client decrypts: if y_j
// is in X, P(y_j) = 0 and the plaintext is y_j itself (a member of X);
// otherwise it is a random value revealing nothing about y_j.
package fnp

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"sealedbottle/internal/baseline/paillier"
	"sealedbottle/internal/crypt"
)

// DefaultKeyBits is the Paillier modulus size used when the caller does not
// choose one. The paper's comparison assumes 1024-bit asymmetric keys.
const DefaultKeyBits = 1024

// element reduces an attribute's canonical string into Z_n via SHA-256.
func element(canonical string, n *big.Int) *big.Int {
	d := crypt.HashAttribute(canonical)
	return new(big.Int).Mod(d.Big(), n)
}

// Client is the set holder that learns the intersection.
type Client struct {
	key      *paillier.PrivateKey
	rng      io.Reader
	elements map[string]*big.Int // canonical -> reduced element
}

// NewClient generates a Paillier key pair and prepares the client's set.
func NewClient(rng io.Reader, keyBits int, set []string) (*Client, error) {
	if len(set) == 0 {
		return nil, errors.New("fnp: client set is empty")
	}
	if keyBits <= 0 {
		keyBits = DefaultKeyBits
	}
	if rng == nil {
		rng = rand.Reader
	}
	key, err := paillier.GenerateKey(rng, keyBits)
	if err != nil {
		return nil, fmt.Errorf("fnp: generating key: %w", err)
	}
	c := &Client{key: key, rng: rng, elements: make(map[string]*big.Int, len(set))}
	for _, s := range set {
		c.elements[s] = element(s, key.N)
	}
	return c, nil
}

// Request is the client's first message: the public key and the encrypted
// polynomial coefficients (degree |X|).
type Request struct {
	// PublicKey is the client's Paillier public key.
	PublicKey *paillier.PublicKey
	// Coefficients are Enc(c_0), ..., Enc(c_k) of P(y) = Σ c_i·y^i.
	Coefficients []*paillier.Ciphertext
}

// BuildRequest encodes the client set as an encrypted polynomial.
func (c *Client) BuildRequest() (*Request, error) {
	n := c.key.N
	// P(y) = Π (y - x_i), built coefficient-by-coefficient over Z_n.
	coeffs := []*big.Int{big.NewInt(1)} // constant polynomial 1
	for _, x := range c.elements {
		negX := new(big.Int).Mod(new(big.Int).Neg(x), n)
		next := make([]*big.Int, len(coeffs)+1)
		for i := range next {
			next[i] = big.NewInt(0)
		}
		for i, coef := range coeffs {
			// (coef · y^i) · (y - x) contributes coef·y^{i+1} and -x·coef·y^i.
			next[i+1] = new(big.Int).Mod(new(big.Int).Add(next[i+1], coef), n)
			next[i] = new(big.Int).Mod(new(big.Int).Add(next[i], new(big.Int).Mul(coef, negX)), n)
		}
		coeffs = next
	}
	enc := make([]*paillier.Ciphertext, len(coeffs))
	for i, coef := range coeffs {
		ct, err := c.key.Encrypt(c.rng, coef)
		if err != nil {
			return nil, fmt.Errorf("fnp: encrypting coefficient %d: %w", i, err)
		}
		enc[i] = ct
	}
	return &Request{PublicKey: &c.key.PublicKey, Coefficients: enc}, nil
}

// Response is the server's message: one ciphertext per server element, in the
// same order as the server's set.
type Response struct {
	// Items holds Enc(r_j·P(y_j) + y_j).
	Items []*paillier.Ciphertext
}

// Respond is the server side: it obliviously evaluates the client polynomial
// on every element of its own set.
func Respond(rng io.Reader, req *Request, serverSet []string) (*Response, error) {
	if req == nil || req.PublicKey == nil || len(req.Coefficients) < 2 {
		return nil, errors.New("fnp: malformed request")
	}
	if len(serverSet) == 0 {
		return nil, errors.New("fnp: server set is empty")
	}
	if rng == nil {
		rng = rand.Reader
	}
	pk := req.PublicKey
	out := make([]*paillier.Ciphertext, len(serverSet))
	for j, s := range serverSet {
		y := element(s, pk.N)
		// Horner evaluation of Enc(P(y)): acc = acc·y + c_i homomorphically.
		acc := req.Coefficients[len(req.Coefficients)-1]
		for i := len(req.Coefficients) - 2; i >= 0; i-- {
			acc = pk.Add(pk.ScalarMul(acc, y), req.Coefficients[i])
		}
		r, err := rand.Int(rng, pk.N)
		if err != nil {
			return nil, fmt.Errorf("fnp: sampling blinding factor: %w", err)
		}
		// Enc(r·P(y) + y)
		blinded := pk.AddPlain(pk.ScalarMul(acc, r), y)
		rerandomized, err := pk.Rerandomize(rng, blinded)
		if err != nil {
			return nil, fmt.Errorf("fnp: rerandomizing: %w", err)
		}
		out[j] = rerandomized
	}
	return &Response{Items: out}, nil
}

// Intersect decrypts the server response and returns the canonical strings of
// the client's elements found in the server's set.
func (c *Client) Intersect(resp *Response) ([]string, error) {
	if resp == nil {
		return nil, errors.New("fnp: nil response")
	}
	// Reverse index from reduced element to canonical string.
	index := make(map[string]string, len(c.elements))
	for canonical, v := range c.elements {
		index[v.String()] = canonical
	}
	var out []string
	seen := make(map[string]struct{})
	for _, ct := range resp.Items {
		m, err := c.key.Decrypt(ct)
		if err != nil {
			return nil, fmt.Errorf("fnp: decrypting response item: %w", err)
		}
		if canonical, ok := index[m.String()]; ok {
			if _, dup := seen[canonical]; !dup {
				seen[canonical] = struct{}{}
				out = append(out, canonical)
			}
		}
	}
	return out, nil
}

// Run executes the whole protocol between a client set and a server set and
// returns the intersection from the client's point of view. It is the
// convenience entry point used by the comparison experiments.
func Run(rng io.Reader, keyBits int, clientSet, serverSet []string) ([]string, error) {
	client, err := NewClient(rng, keyBits, clientSet)
	if err != nil {
		return nil, err
	}
	req, err := client.BuildRequest()
	if err != nil {
		return nil, err
	}
	resp, err := Respond(rng, req, serverSet)
	if err != nil {
		return nil, err
	}
	return client.Intersect(resp)
}
