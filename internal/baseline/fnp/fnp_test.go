package fnp

import (
	"crypto/rand"
	"sort"
	"testing"
	"testing/quick"

	mrand "math/rand"
)

// Small keys keep the O(|X|·|Y|) homomorphic evaluation fast in tests.
const testKeyBits = 384

func TestRunBasicIntersection(t *testing.T) {
	client := []string{"tag:a", "tag:b", "tag:c", "tag:d"}
	server := []string{"tag:c", "tag:d", "tag:e"}
	got, err := Run(rand.Reader, testKeyBits, client, server)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	want := []string{"tag:c", "tag:d"}
	if len(got) != len(want) {
		t.Fatalf("intersection = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("intersection = %v, want %v", got, want)
		}
	}
}

func TestRunDisjointSets(t *testing.T) {
	got, err := Run(rand.Reader, testKeyBits, []string{"tag:a", "tag:b"}, []string{"tag:x", "tag:y"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("disjoint sets should have empty intersection, got %v", got)
	}
}

func TestRunIdenticalSets(t *testing.T) {
	set := []string{"tag:a", "tag:b", "tag:c"}
	got, err := Run(rand.Reader, testKeyBits, set, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(set) {
		t.Errorf("identical sets should fully intersect, got %v", got)
	}
}

func TestClientValidation(t *testing.T) {
	if _, err := NewClient(rand.Reader, testKeyBits, nil); err == nil {
		t.Error("empty client set should fail")
	}
	client, err := NewClient(rand.Reader, testKeyBits, []string{"tag:a"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Intersect(nil); err == nil {
		t.Error("nil response should fail")
	}
	req, err := client.BuildRequest()
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Coefficients) != 2 {
		t.Errorf("degree-1 polynomial should have 2 coefficients, got %d", len(req.Coefficients))
	}
	if _, err := Respond(rand.Reader, req, nil); err == nil {
		t.Error("empty server set should fail")
	}
	if _, err := Respond(rand.Reader, nil, []string{"tag:x"}); err == nil {
		t.Error("nil request should fail")
	}
}

func TestServerLearnsNothingDirectly(t *testing.T) {
	// The request contains only Paillier ciphertexts — every coefficient
	// ciphertext must differ from the raw coefficient values (sanity check
	// that nothing is sent in the clear).
	client, err := NewClient(rand.Reader, testKeyBits, []string{"tag:a", "tag:b"})
	if err != nil {
		t.Fatal(err)
	}
	req, err := client.BuildRequest()
	if err != nil {
		t.Fatal(err)
	}
	for i, ct := range req.Coefficients {
		if ct.C.BitLen() < 100 {
			t.Errorf("coefficient %d looks unencrypted (%d bits)", i, ct.C.BitLen())
		}
	}
}

// Property: the protocol output always equals the plaintext intersection.
func TestMatchesPlainIntersectionProperty(t *testing.T) {
	rng := mrand.New(mrand.NewSource(1))
	universe := []string{"tag:a", "tag:b", "tag:c", "tag:d", "tag:e", "tag:f"}
	pick := func() []string {
		var out []string
		for _, u := range universe {
			if rng.Intn(2) == 0 {
				out = append(out, u)
			}
		}
		if len(out) == 0 {
			out = append(out, universe[rng.Intn(len(universe))])
		}
		return out
	}
	f := func() bool {
		clientSet, serverSet := pick(), pick()
		got, err := Run(rand.Reader, testKeyBits, clientSet, serverSet)
		if err != nil {
			return false
		}
		want := map[string]bool{}
		for _, c := range clientSet {
			for _, s := range serverSet {
				if c == s {
					want[c] = true
				}
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, g := range got {
			if !want[g] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
