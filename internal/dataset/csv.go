package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSV persistence: each user is one row
// id,birthyear,gender,tag1|tag2|...,kw1|kw2|...
// so corpora can be generated once and shared across experiment runs.

const listSeparator = "|"

// WriteCSV serializes the corpus to CSV.
func (c *Corpus) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "birthyear", "gender", "tags", "keywords"}); err != nil {
		return fmt.Errorf("dataset: writing header: %w", err)
	}
	for _, u := range c.Users {
		row := []string{
			u.ID,
			strconv.Itoa(u.BirthYear),
			u.Gender,
			strings.Join(u.Tags, listSeparator),
			strings.Join(u.Keywords, listSeparator),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: writing user %s: %w", u.ID, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("dataset: flushing csv: %w", err)
	}
	return nil
}

// ReadCSV parses a corpus previously written by WriteCSV.
func ReadCSV(r io.Reader) (*Corpus, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	if len(header) != 5 || header[0] != "id" {
		return nil, fmt.Errorf("dataset: unexpected header %v", header)
	}
	corpus := &Corpus{}
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading row: %w", err)
		}
		year, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("dataset: bad birth year %q: %w", row[1], err)
		}
		corpus.Users = append(corpus.Users, User{
			ID:        row[0],
			BirthYear: year,
			Gender:    row[2],
			Tags:      splitList(row[3]),
			Keywords:  splitList(row[4]),
		})
	}
	corpus.Params = Params{Users: len(corpus.Users)}
	return corpus, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, listSeparator)
}
