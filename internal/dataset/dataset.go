// Package dataset generates and analyzes a synthetic social-network profile
// corpus with the published marginal statistics of the Tencent Weibo dataset
// the paper evaluates on (Section V-A): a tag vocabulary of ≈560k and a
// keyword vocabulary of ≈714k, a mean of 6 and maximum of 20 tags per user, a
// mean of 7 and maximum of 129 keywords per user, Zipf-like popularity so
// that more than 90% of users end up with unique profiles, plus birth year
// and gender fields.
//
// The original 2.32M-user dataset is proprietary; the experiments only depend
// on these marginals and on hash/remainder arithmetic, so the synthetic
// corpus reproduces the shapes of Figures 4-7 and Table VI (see DESIGN.md,
// substitution 1).
package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"sealedbottle/internal/attr"
)

// Default corpus parameters, matching the published Tencent Weibo marginals.
const (
	DefaultTagVocabulary     = 560_419
	DefaultKeywordVocabulary = 713_747
	DefaultMeanTags          = 6
	DefaultMaxTags           = 20
	DefaultMeanKeywords      = 7
	DefaultMaxKeywords       = 129
	// FullScaleUsers is the size of the original dataset; experiments default
	// to a smaller laptop-friendly scale.
	FullScaleUsers = 2_320_000
)

// Params parameterizes corpus generation.
type Params struct {
	// Users is the number of user profiles to generate.
	Users int
	// TagVocabulary and KeywordVocabulary are the attribute-space sizes m.
	TagVocabulary     int
	KeywordVocabulary int
	// MeanTags/MaxTags control the per-user tag count distribution
	// (truncated geometric with the given mean).
	MeanTags int
	MaxTags  int
	// MeanKeywords/MaxKeywords control the per-user keyword count.
	MeanKeywords int
	MaxKeywords  int
	// ZipfExponent shapes attribute popularity (>1; default 1.2).
	ZipfExponent float64
	// Seed makes generation deterministic.
	Seed int64
}

// withDefaults fills unset fields with the paper's values.
func (p Params) withDefaults() Params {
	if p.Users <= 0 {
		p.Users = 10_000
	}
	if p.TagVocabulary <= 0 {
		p.TagVocabulary = DefaultTagVocabulary
	}
	if p.KeywordVocabulary <= 0 {
		p.KeywordVocabulary = DefaultKeywordVocabulary
	}
	if p.MeanTags <= 0 {
		p.MeanTags = DefaultMeanTags
	}
	if p.MaxTags <= 0 {
		p.MaxTags = DefaultMaxTags
	}
	if p.MeanKeywords <= 0 {
		p.MeanKeywords = DefaultMeanKeywords
	}
	if p.MaxKeywords <= 0 {
		p.MaxKeywords = DefaultMaxKeywords
	}
	if p.ZipfExponent <= 1 {
		// A mildly skewed popularity curve: popular tags exist (as in the
		// real dataset) but the long tail keeps >90% of profiles unique.
		p.ZipfExponent = 1.05
	}
	return p
}

// User is one synthetic profile record.
type User struct {
	// ID is a stable user identifier.
	ID string
	// BirthYear and Gender mirror the dataset's demographic fields.
	BirthYear int
	Gender    string
	// Tags are the user-selected interest tags.
	Tags []string
	// Keywords are the keywords extracted from the user's posts.
	Keywords []string
}

// Profile converts the record into an attribute profile. When withKeywords is
// false only tags (plus demographics) are included, matching the paper's
// "profile without keywords" variant of Fig. 4.
func (u User) Profile(withKeywords bool) *attr.Profile {
	p := attr.NewProfile()
	for _, t := range u.Tags {
		p.Add(attr.MustNew(attr.HeaderTag, t))
	}
	if withKeywords {
		for _, k := range u.Keywords {
			p.Add(attr.MustNew(attr.HeaderKeyword, k))
		}
	}
	return p
}

// TagProfile returns the tags-only profile (the unit used by Figs. 6-7).
func (u User) TagProfile() *attr.Profile { return u.Profile(false) }

// Corpus is a generated set of user profiles.
type Corpus struct {
	// Params echoes the generation parameters.
	Params Params
	// Users holds the generated records.
	Users []User
}

// Generate builds a deterministic synthetic corpus.
func Generate(params Params) *Corpus {
	params = params.withDefaults()
	rng := rand.New(rand.NewSource(params.Seed))
	tagZipf := rand.NewZipf(rng, params.ZipfExponent, 1, uint64(params.TagVocabulary-1))
	keywordZipf := rand.NewZipf(rng, params.ZipfExponent, 1, uint64(params.KeywordVocabulary-1))

	users := make([]User, params.Users)
	for i := range users {
		nTags := truncatedGeometric(rng, params.MeanTags, params.MaxTags)
		nKeywords := truncatedGeometric(rng, params.MeanKeywords, params.MaxKeywords)
		users[i] = User{
			ID:        fmt.Sprintf("u%07d", i),
			BirthYear: 1950 + rng.Intn(55),
			Gender:    pickGender(rng),
			Tags:      sampleDistinct(tagZipf, nTags, "tag"),
			Keywords:  sampleDistinct(keywordZipf, nKeywords, "kw"),
		}
	}
	return &Corpus{Params: params, Users: users}
}

// pickGender draws a gender value with a small unknown fraction, mirroring
// real profile data.
func pickGender(rng *rand.Rand) string {
	switch r := rng.Float64(); {
	case r < 0.48:
		return "male"
	case r < 0.96:
		return "female"
	default:
		return "unknown"
	}
}

// truncatedGeometric draws from a geometric distribution with the given mean,
// truncated to [1, max]. The resulting per-user attribute counts reproduce
// the heavily skewed, long-tailed shape of Fig. 5.
func truncatedGeometric(rng *rand.Rand, mean, max int) int {
	if mean < 1 {
		mean = 1
	}
	p := 1.0 / float64(mean)
	n := 1
	for n < max && rng.Float64() > p {
		n++
	}
	return n
}

// sampleDistinct draws n distinct vocabulary items from the Zipf sampler.
// Items are named "<prefix><index>" so they normalize to stable, distinct
// canonical attribute values.
func sampleDistinct(z *rand.Zipf, n int, prefix string) []string {
	seen := make(map[uint64]struct{}, n)
	out := make([]string, 0, n)
	for len(out) < n {
		v := z.Uint64()
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, fmt.Sprintf("%s%s", prefix, indexToken(v)))
	}
	sort.Strings(out)
	return out
}

// indexToken encodes a vocabulary index using letters so normalization keeps
// distinct indices distinct. The alphabet deliberately omits 's': the
// singularization step of the normalization pipeline strips trailing 's'
// characters, which would merge tokens like "as" and "a". Digits are avoided
// because they would be spelled out as words.
func indexToken(v uint64) string {
	const alphabet = "abcdefghijklmnopqrtuvwxyz" // 25 letters, no 's'
	base := uint64(len(alphabet))
	if v == 0 {
		return "a"
	}
	buf := make([]byte, 0, 16)
	for v > 0 {
		buf = append(buf, alphabet[v%base])
		v /= base
	}
	return string(buf)
}

// Profiles materializes every user's profile (with or without keywords).
func (c *Corpus) Profiles(withKeywords bool) []*attr.Profile {
	out := make([]*attr.Profile, len(c.Users))
	for i, u := range c.Users {
		out[i] = u.Profile(withKeywords)
	}
	return out
}

// UsersWithTagCount returns the users having exactly n tags — the analogue of
// the paper's "52,248 users with 6 attributes" sub-population.
func (c *Corpus) UsersWithTagCount(n int) []User {
	var out []User
	for _, u := range c.Users {
		if len(u.Tags) == n {
			out = append(out, u)
		}
	}
	return out
}

// Sample returns k users drawn without replacement (deterministically, given
// the seed), the analogue of the paper's 1,000-user diverse sample.
func (c *Corpus) Sample(k int, seed int64) []User {
	if k >= len(c.Users) {
		out := make([]User, len(c.Users))
		copy(out, c.Users)
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(c.Users))[:k]
	sort.Ints(idx)
	out := make([]User, k)
	for i, j := range idx {
		out[i] = c.Users[j]
	}
	return out
}

// PopularTags returns the k most frequent tags in the corpus, most popular
// first (ties broken lexicographically). Under the Zipf popularity model the
// head of this list covers a disproportionate share of all profiles — it is
// both the natural dictionary for the paper's dictionary-profiling adversary
// (an attacker enumerates popular attributes first) and a direct view of the
// skew the sampler produced.
func (c *Corpus) PopularTags(k int) []string {
	counts := make(map[string]int)
	for _, u := range c.Users {
		for _, t := range u.Tags {
			counts[t]++
		}
	}
	tags := make([]string, 0, len(counts))
	for t := range counts {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool {
		if counts[tags[i]] != counts[tags[j]] {
			return counts[tags[i]] > counts[tags[j]]
		}
		return tags[i] < tags[j]
	})
	if k < len(tags) {
		tags = tags[:k]
	}
	return tags
}

// EntropyModel builds a per-category value distribution model from the corpus
// (used by Protocol 3's ϕ budgets).
func (c *Corpus) EntropyModel(withKeywords bool) *attr.EntropyModel {
	m := attr.NewEntropyModel(len(c.Users))
	for _, u := range c.Users {
		m.ObserveProfile(u.Profile(withKeywords))
	}
	return m
}

// CollisionStats describes how unique profiles are (Fig. 4).
type CollisionStats struct {
	// Histogram[k] is the fraction of users whose exact profile is shared by
	// exactly k users (k=1 means unique).
	Histogram map[int]float64
	// CDF[k] is the fraction of users whose profile is shared by at most k
	// users.
	CDF map[int]float64
	// UniqueFraction is Histogram[1].
	UniqueFraction float64
}

// Collisions computes profile-uniqueness statistics, with or without
// keywords, over the corpus.
func (c *Corpus) Collisions(withKeywords bool) CollisionStats {
	counts := make(map[string]int, len(c.Users))
	for _, u := range c.Users {
		counts[u.Profile(withKeywords).Fingerprint()]++
	}
	hist := make(map[int]float64)
	total := float64(len(c.Users))
	for _, n := range counts {
		hist[n] += float64(n) / total
	}
	cdf := make(map[int]float64)
	maxK := 0
	for k := range hist {
		if k > maxK {
			maxK = k
		}
	}
	running := 0.0
	for k := 1; k <= maxK; k++ {
		running += hist[k]
		cdf[k] = running
	}
	return CollisionStats{Histogram: hist, CDF: cdf, UniqueFraction: hist[1]}
}

// TagCountDistribution returns, for each tag count n, how many users have
// exactly n tags (Fig. 5).
func (c *Corpus) TagCountDistribution() map[int]int {
	out := make(map[int]int)
	for _, u := range c.Users {
		out[len(u.Tags)]++
	}
	return out
}

// MeanTagCount returns the average number of tags per user.
func (c *Corpus) MeanTagCount() float64 {
	if len(c.Users) == 0 {
		return 0
	}
	total := 0
	for _, u := range c.Users {
		total += len(u.Tags)
	}
	return float64(total) / float64(len(c.Users))
}

// MeanKeywordCount returns the average number of keywords per user.
func (c *Corpus) MeanKeywordCount() float64 {
	if len(c.Users) == 0 {
		return 0
	}
	total := 0
	for _, u := range c.Users {
		total += len(u.Keywords)
	}
	return float64(total) / float64(len(c.Users))
}

// VocabularyUsed returns how many distinct tags and keywords actually occur.
func (c *Corpus) VocabularyUsed() (tags, keywords int) {
	t := make(map[string]struct{})
	k := make(map[string]struct{})
	for _, u := range c.Users {
		for _, tag := range u.Tags {
			t[tag] = struct{}{}
		}
		for _, kw := range u.Keywords {
			k[kw] = struct{}{}
		}
	}
	return len(t), len(k)
}
