package dataset

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func smallCorpus(tb testing.TB) *Corpus {
	tb.Helper()
	return Generate(Params{Users: 2000, Seed: 42})
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Params{Users: 100, Seed: 7})
	b := Generate(Params{Users: 100, Seed: 7})
	if len(a.Users) != 100 || len(b.Users) != 100 {
		t.Fatal("wrong user count")
	}
	for i := range a.Users {
		if a.Users[i].ID != b.Users[i].ID || len(a.Users[i].Tags) != len(b.Users[i].Tags) {
			t.Fatal("generation is not deterministic")
		}
		for j := range a.Users[i].Tags {
			if a.Users[i].Tags[j] != b.Users[i].Tags[j] {
				t.Fatal("tag sets differ across identical seeds")
			}
		}
	}
	c := Generate(Params{Users: 100, Seed: 8})
	same := true
	for i := range a.Users {
		if len(a.Users[i].Tags) != len(c.Users[i].Tags) {
			same = false
			break
		}
	}
	if same {
		// Extremely unlikely for all 100 users to have identical tag counts
		// under a different seed; treat as suspicious.
		t.Log("warning: different seeds produced identical tag-count sequences")
	}
}

func TestGeneratedMarginalsMatchPaper(t *testing.T) {
	c := smallCorpus(t)
	mean := c.MeanTagCount()
	if mean < 4 || mean > 8 {
		t.Errorf("mean tag count = %v, want ≈6", mean)
	}
	meanKw := c.MeanKeywordCount()
	if meanKw < 5 || meanKw > 9 {
		t.Errorf("mean keyword count = %v, want ≈7", meanKw)
	}
	for _, u := range c.Users {
		if len(u.Tags) < 1 || len(u.Tags) > DefaultMaxTags {
			t.Fatalf("user %s has %d tags", u.ID, len(u.Tags))
		}
		if len(u.Keywords) < 1 || len(u.Keywords) > DefaultMaxKeywords {
			t.Fatalf("user %s has %d keywords", u.ID, len(u.Keywords))
		}
		if u.Gender == "" || u.BirthYear < 1950 || u.BirthYear > 2010 {
			t.Fatalf("user %s has bad demographics: %+v", u.ID, u)
		}
		seen := map[string]struct{}{}
		for _, tag := range u.Tags {
			if _, dup := seen[tag]; dup {
				t.Fatalf("user %s has duplicate tag %q", u.ID, tag)
			}
			seen[tag] = struct{}{}
		}
	}
}

func TestProfileUniquenessMatchesFig4(t *testing.T) {
	c := smallCorpus(t)
	with := c.Collisions(true)
	without := c.Collisions(false)
	// The paper reports >90% unique profiles; with keywords uniqueness is
	// higher than without.
	if with.UniqueFraction < 0.9 {
		t.Errorf("unique fraction with keywords = %v, want > 0.9", with.UniqueFraction)
	}
	if with.UniqueFraction < without.UniqueFraction {
		t.Errorf("keywords should not reduce uniqueness: %v < %v", with.UniqueFraction, without.UniqueFraction)
	}
	// The CDF is monotone and ends at 1.
	prev := 0.0
	maxK := 0
	for k := range without.CDF {
		if k > maxK {
			maxK = k
		}
	}
	for k := 1; k <= maxK; k++ {
		if without.CDF[k]+1e-9 < prev {
			t.Error("collision CDF is not monotone")
		}
		prev = without.CDF[k]
	}
	if math.Abs(prev-1) > 1e-6 {
		t.Errorf("collision CDF should reach 1, got %v", prev)
	}
}

func TestTagCountDistributionShape(t *testing.T) {
	c := smallCorpus(t)
	dist := c.TagCountDistribution()
	total := 0
	for n, cnt := range dist {
		if n < 1 || n > DefaultMaxTags {
			t.Errorf("tag count %d out of range", n)
		}
		total += cnt
	}
	if total != len(c.Users) {
		t.Errorf("distribution total %d != %d users", total, len(c.Users))
	}
	// Long-tailed: few-tag users outnumber many-tag users (Fig. 5).
	if dist[1] < dist[15] {
		t.Errorf("distribution not decreasing: %d users with 1 tag vs %d with 15", dist[1], dist[15])
	}
}

func TestUsersWithTagCountAndSample(t *testing.T) {
	c := smallCorpus(t)
	six := c.UsersWithTagCount(6)
	for _, u := range six {
		if len(u.Tags) != 6 {
			t.Fatal("UsersWithTagCount returned a wrong user")
		}
	}
	if len(six) == 0 {
		t.Error("expected some six-tag users in a 2000-user corpus")
	}
	sample := c.Sample(100, 1)
	if len(sample) != 100 {
		t.Errorf("sample size = %d", len(sample))
	}
	// Sampling more than the corpus returns everything.
	if got := len(c.Sample(10_000, 1)); got != len(c.Users) {
		t.Errorf("oversized sample = %d", got)
	}
	// Deterministic given the seed.
	again := c.Sample(100, 1)
	for i := range sample {
		if sample[i].ID != again[i].ID {
			t.Fatal("sampling is not deterministic")
		}
	}
}

func TestProfilesAndEntropyModel(t *testing.T) {
	c := Generate(Params{Users: 300, Seed: 5})
	profiles := c.Profiles(false)
	if len(profiles) != 300 {
		t.Fatal("wrong profile count")
	}
	for i, p := range profiles {
		if p.Len() != len(c.Users[i].Tags) {
			t.Fatalf("profile %d has %d attributes, want %d", i, p.Len(), len(c.Users[i].Tags))
		}
	}
	m := c.EntropyModel(false)
	if m.Population != 300 {
		t.Error("entropy model population wrong")
	}
	if m.ProfileEntropy(profiles[0]) <= 0 {
		t.Error("profile entropy should be positive for tag attributes")
	}
	tags, kws := c.VocabularyUsed()
	if tags == 0 {
		t.Error("no tags used")
	}
	if kws == 0 {
		t.Error("no keywords used")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	c := Generate(Params{Users: 50, Seed: 3})
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Users) != len(c.Users) {
		t.Fatalf("user count %d != %d", len(back.Users), len(c.Users))
	}
	for i := range c.Users {
		if back.Users[i].ID != c.Users[i].ID ||
			back.Users[i].BirthYear != c.Users[i].BirthYear ||
			back.Users[i].Gender != c.Users[i].Gender ||
			len(back.Users[i].Tags) != len(c.Users[i].Tags) ||
			len(back.Users[i].Keywords) != len(c.Users[i].Keywords) {
			t.Fatalf("user %d did not round trip: %+v vs %+v", i, back.Users[i], c.Users[i])
		}
	}
	if _, err := ReadCSV(bytes.NewBufferString("not,a,valid,corpus\n")); err == nil {
		t.Error("bad header should fail")
	}
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Error("empty input should fail")
	}
}

func TestIndexTokenDistinct(t *testing.T) {
	seen := map[string]uint64{}
	for v := uint64(0); v < 5000; v++ {
		tok := indexToken(v)
		if prev, dup := seen[tok]; dup {
			t.Fatalf("indexToken collision: %d and %d both map to %q", prev, v, tok)
		}
		seen[tok] = v
	}
}

// Property: truncatedGeometric always stays within [1, max] and its empirical
// mean lands near the target.
func TestTruncatedGeometricProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := Generate(Params{Users: 500, Seed: seed, MeanTags: 6, MaxTags: 20})
		mean := c.MeanTagCount()
		if mean < 3 || mean > 9 {
			return false
		}
		for _, u := range c.Users {
			if len(u.Tags) < 1 || len(u.Tags) > 20 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestPopularTags(t *testing.T) {
	c := Generate(Params{Users: 2000, TagVocabulary: 500, Seed: 11})
	top := c.PopularTags(10)
	if len(top) != 10 {
		t.Fatalf("got %d tags, want 10", len(top))
	}
	counts := make(map[string]int)
	for _, u := range c.Users {
		for _, tag := range u.Tags {
			counts[tag]++
		}
	}
	for i := 1; i < len(top); i++ {
		a, b := counts[top[i-1]], counts[top[i]]
		if a < b || (a == b && top[i-1] >= top[i]) {
			t.Fatalf("tags not ordered by (count desc, name asc): %q(%d) before %q(%d)", top[i-1], a, top[i], b)
		}
	}
	// Zipf skew: the head of the popularity list must cover a large share of
	// all tag occurrences.
	total, head := 0, 0
	for _, n := range counts {
		total += n
	}
	for _, tag := range top {
		head += counts[tag]
	}
	if frac := float64(head) / float64(total); frac < 0.10 {
		t.Fatalf("top-10 tags cover only %.1f%% of occurrences; the Zipf head should dominate", 100*frac)
	}
	// Asking for more tags than exist returns them all.
	if all := c.PopularTags(1 << 20); len(all) != len(counts) {
		t.Fatalf("PopularTags(huge) returned %d of %d distinct tags", len(all), len(counts))
	}
}
