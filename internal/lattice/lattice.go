// Package lattice implements the hexagonal-lattice location hashing of
// Section III-D: locations are snapped to the nearest point of a hexagonal
// lattice, a user's vicinity becomes a set of lattice points, and vicinity
// search reduces to the fuzzy profile matching mechanism with the lattice
// points playing the role of (dynamic) attributes. The package also derives
// dynamic keys from lattice points so that static attributes can be bound to
// the holder's current location (Section III-D3), which makes externally
// built attribute dictionaries useless.
package lattice

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"sealedbottle/internal/attr"
	"sealedbottle/internal/crypt"
)

// Point is a planar location in meters relative to an arbitrary but shared
// geographic origin (e.g. a local tangent-plane projection of GPS
// coordinates).
type Point struct {
	X float64
	Y float64
}

// Distance returns the Euclidean distance between two points.
func (p Point) Distance(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// LatticePoint identifies a lattice point by its integer coordinates
// (u1, u2) in the primitive-vector basis (Eq. 14).
type LatticePoint struct {
	U1 int
	U2 int
}

// String renders the lattice point compactly.
func (lp LatticePoint) String() string { return fmt.Sprintf("(%d,%d)", lp.U1, lp.U2) }

// Less orders lattice points lexicographically; used to keep vicinity sets in
// a canonical order on both sides.
func (lp LatticePoint) Less(o LatticePoint) bool {
	if lp.U1 != o.U1 {
		return lp.U1 < o.U1
	}
	return lp.U2 < o.U2
}

// Lattice is a hexagonal lattice with primitive vectors a1 = (d, 0) and
// a2 = (d/2, √3·d/2) (Eq. 15), anchored at a shared origin. All participants
// of a vicinity search must agree on the origin and cell size, exactly as
// they must agree on the hash function.
type Lattice struct {
	origin Point
	d      float64
	tag    string
}

// New builds a lattice with the given origin and cell size d (the shortest
// distance between lattice points, in meters).
func New(origin Point, d float64) (*Lattice, error) {
	if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
		return nil, errors.New("lattice: cell size must be a positive finite number")
	}
	// The grid tag folds the public lattice parameters into every attribute
	// so that points from differently-parameterized grids can never collide.
	tagDigest := crypt.HashBytes([]byte(fmt.Sprintf("lattice|%.6f|%.6f|%.6f", origin.X, origin.Y, d)))
	return &Lattice{origin: origin, d: d, tag: encodeToken(int(tagDigest.Uint64() % 1_000_000))}, nil
}

// CellSize returns d.
func (l *Lattice) CellSize() float64 { return l.d }

// Origin returns the lattice origin.
func (l *Lattice) Origin() Point { return l.origin }

// Center returns the planar coordinates of a lattice point:
// u1·a1 + u2·a2 relative to the origin.
func (l *Lattice) Center(lp LatticePoint) Point {
	return Point{
		X: l.origin.X + float64(lp.U1)*l.d + float64(lp.U2)*l.d/2,
		Y: l.origin.Y + float64(lp.U2)*l.d*math.Sqrt(3)/2,
	}
}

// Nearest hashes a location to its nearest lattice point. Any two locations
// hashed to the same lattice point are within a bounded distance of each
// other (at most d/√3 from the lattice point, the circumradius of the
// hexagonal cell).
func (l *Lattice) Nearest(p Point) LatticePoint {
	// Invert the basis to get fractional lattice coordinates.
	relX := p.X - l.origin.X
	relY := p.Y - l.origin.Y
	fu2 := relY * 2 / (l.d * math.Sqrt(3))
	fu1 := relX/l.d - fu2/2
	// The nearest lattice point is among the four integer corners of the
	// fractional cell; pick the one minimizing Euclidean distance.
	best := LatticePoint{U1: int(math.Floor(fu1)), U2: int(math.Floor(fu2))}
	bestDist := math.Inf(1)
	for du1 := 0; du1 <= 1; du1++ {
		for du2 := 0; du2 <= 1; du2++ {
			cand := LatticePoint{U1: int(math.Floor(fu1)) + du1, U2: int(math.Floor(fu2)) + du2}
			if dist := p.Distance(l.Center(cand)); dist < bestDist {
				best, bestDist = cand, dist
			}
		}
	}
	return best
}

// PointDistance returns the Euclidean distance between the centers of two
// lattice points.
func (l *Lattice) PointDistance(a, b LatticePoint) float64 {
	return l.Center(a).Distance(l.Center(b))
}

// Vicinity returns the vicinity lattice point set V(O, d, loc, D): the lattice
// point nearest to loc plus every lattice point whose center lies within
// distance D of that center point (Section III-D2). The result is sorted in a
// canonical order so that both parties derive identical attribute vectors.
func (l *Lattice) Vicinity(loc Point, radius float64) []LatticePoint {
	center := l.Nearest(loc)
	if radius < 0 {
		radius = 0
	}
	// Enumerate a bounding box in lattice coordinates and filter by distance.
	span := int(math.Ceil(radius/l.d)) + 1
	out := []LatticePoint{}
	centerPt := l.Center(center)
	for du1 := -2 * span; du1 <= 2*span; du1++ {
		for du2 := -2 * span; du2 <= 2*span; du2++ {
			cand := LatticePoint{U1: center.U1 + du1, U2: center.U2 + du2}
			if centerPt.Distance(l.Center(cand)) <= radius+1e-9 {
				out = append(out, cand)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Overlap returns |a ∩ b|, the number of shared lattice points.
func Overlap(a, b []LatticePoint) int {
	set := make(map[LatticePoint]struct{}, len(a))
	for _, p := range a {
		set[p] = struct{}{}
	}
	n := 0
	for _, p := range b {
		if _, ok := set[p]; ok {
			n++
		}
	}
	return n
}

// VicinityRatio returns θ_k = |V_i ∩ V_k| / |V_k| (Eq. 16): the fraction of
// the candidate's vicinity set shared with the initiator's.
func VicinityRatio(initiator, candidate []LatticePoint) float64 {
	if len(candidate) == 0 {
		return 0
	}
	return float64(Overlap(initiator, candidate)) / float64(len(candidate))
}

// AttributeHeader is the attribute category used for lattice points.
const AttributeHeader = "lattice"

// Attribute converts a lattice point into a profile attribute. The value
// encodes the grid tag and the integer coordinates using alphabetic tokens so
// that the normalization pipeline (which strips signs and converts digits)
// cannot merge distinct points.
func (l *Lattice) Attribute(lp LatticePoint) attr.Attribute {
	value := fmt.Sprintf("g%s q%s r%s", l.tag, encodeToken(lp.U1), encodeToken(lp.U2))
	return attr.MustNew(AttributeHeader, value)
}

// Attributes converts a vicinity set into sorted profile attributes.
func (l *Lattice) Attributes(points []LatticePoint) []attr.Attribute {
	out := make([]attr.Attribute, len(points))
	for i, p := range points {
		out[i] = l.Attribute(p)
	}
	return out
}

// VicinityAttributes hashes the user's vicinity region into attributes ready
// to be used as the optional set of a fuzzy request, and returns the minimum
// optional count corresponding to the similarity threshold Θ.
func (l *Lattice) VicinityAttributes(loc Point, radius, theta float64) ([]attr.Attribute, int) {
	points := l.Vicinity(loc, radius)
	attrs := l.Attributes(points)
	if theta < 0 {
		theta = 0
	}
	if theta > 1 {
		theta = 1
	}
	minOptional := int(math.Ceil(theta * float64(len(points))))
	if minOptional > len(points) {
		minOptional = len(points)
	}
	return attrs, minOptional
}

// DynamicKey derives the dynamic key of a single lattice point: a public
// one-way function of the (grid, point) pair. Binding static attributes to
// the key of the holder's current cell makes the same attribute hash
// differently at every location; a nearby participant only has to try the
// handful of lattice points in its own vicinity as candidate keys.
func (l *Lattice) DynamicKey(lp LatticePoint) []byte {
	d := crypt.HashBytes([]byte("sealedbottle/dynamic-key/v1|" + l.Attribute(lp).Canonical()))
	return d[:]
}

// CandidateDynamicKeys returns the dynamic keys of every lattice point in the
// user's vicinity, i.e. the keys a participant should try when matching
// location-bound requests.
func (l *Lattice) CandidateDynamicKeys(loc Point, radius float64) [][]byte {
	points := l.Vicinity(loc, radius)
	out := make([][]byte, len(points))
	for i, p := range points {
		out[i] = l.DynamicKey(p)
	}
	return out
}

// encodeToken encodes an integer as a letters-only token that survives the
// attribute normalization pipeline unambiguously: a sign letter followed by
// one letter (a-j) per decimal digit.
func encodeToken(n int) string {
	var b strings.Builder
	if n < 0 {
		b.WriteByte('n')
		n = -n
	} else {
		b.WriteByte('p')
	}
	digits := fmt.Sprintf("%d", n)
	for _, r := range digits {
		b.WriteByte(byte('a' + (r - '0')))
	}
	return b.String()
}
