package lattice

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustLattice(t *testing.T, origin Point, d float64) *Lattice {
	t.Helper()
	l, err := New(origin, d)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Point{}, 0); err == nil {
		t.Error("zero cell size should fail")
	}
	if _, err := New(Point{}, -5); err == nil {
		t.Error("negative cell size should fail")
	}
	if _, err := New(Point{}, math.NaN()); err == nil {
		t.Error("NaN cell size should fail")
	}
	l := mustLattice(t, Point{X: 3, Y: 4}, 50)
	if l.CellSize() != 50 || l.Origin().X != 3 {
		t.Error("parameters not stored")
	}
}

func TestCenterUsesHexBasis(t *testing.T) {
	l := mustLattice(t, Point{}, 10)
	c := l.Center(LatticePoint{U1: 1, U2: 0})
	if math.Abs(c.X-10) > 1e-9 || math.Abs(c.Y) > 1e-9 {
		t.Errorf("a1 center = %+v", c)
	}
	c = l.Center(LatticePoint{U1: 0, U2: 1})
	if math.Abs(c.X-5) > 1e-9 || math.Abs(c.Y-10*math.Sqrt(3)/2) > 1e-9 {
		t.Errorf("a2 center = %+v", c)
	}
	// Nearest-neighbour distance is exactly d for several neighbours.
	neighbours := []LatticePoint{{1, 0}, {0, 1}, {-1, 1}, {-1, 0}, {0, -1}, {1, -1}}
	for _, n := range neighbours {
		if d := l.PointDistance(LatticePoint{}, n); math.Abs(d-10) > 1e-9 {
			t.Errorf("neighbour %v at distance %v, want 10", n, d)
		}
	}
}

func TestNearestRoundTripsLatticeCenters(t *testing.T) {
	l := mustLattice(t, Point{X: 100, Y: -50}, 25)
	for u1 := -3; u1 <= 3; u1++ {
		for u2 := -3; u2 <= 3; u2++ {
			lp := LatticePoint{U1: u1, U2: u2}
			if got := l.Nearest(l.Center(lp)); got != lp {
				t.Errorf("Nearest(Center(%v)) = %v", lp, got)
			}
		}
	}
}

// Property: every point is within the hexagonal circumradius d/√3 of its
// nearest lattice point, and two points snapping to the same lattice point
// are within d·2/√3 of each other (bounded distance, Section III-D1).
func TestNearestBoundedDistanceProperty(t *testing.T) {
	l := mustLattice(t, Point{}, 40)
	circumradius := 40/math.Sqrt(3) + 1e-6
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Point{X: rng.Float64()*2000 - 1000, Y: rng.Float64()*2000 - 1000}
		lp := l.Nearest(p)
		return p.Distance(l.Center(lp)) <= circumradius
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestVicinityContainsCenterAndIsSorted(t *testing.T) {
	l := mustLattice(t, Point{}, 10)
	loc := Point{X: 3, Y: 4}
	v := l.Vicinity(loc, 30)
	if len(v) == 0 {
		t.Fatal("vicinity should not be empty")
	}
	center := l.Nearest(loc)
	found := false
	for i := 1; i < len(v); i++ {
		if v[i].Less(v[i-1]) {
			t.Fatal("vicinity not sorted")
		}
	}
	centerPt := l.Center(center)
	for _, p := range v {
		if p == center {
			found = true
		}
		if l.Center(p).Distance(centerPt) > 30+1e-6 {
			t.Errorf("point %v outside radius", p)
		}
	}
	if !found {
		t.Error("vicinity must contain the center lattice point")
	}
	// Radius 0 yields exactly the center.
	v0 := l.Vicinity(loc, 0)
	if len(v0) != 1 || v0[0] != center {
		t.Errorf("zero-radius vicinity = %v", v0)
	}
	// Negative radius treated as zero.
	if len(l.Vicinity(loc, -5)) != 1 {
		t.Error("negative radius should behave like zero")
	}
}

func TestVicinityCountGrowsWithRadius(t *testing.T) {
	l := mustLattice(t, Point{}, 10)
	loc := Point{X: 0, Y: 0}
	prev := 0
	for _, r := range []float64{0, 10, 20, 30, 50} {
		n := len(l.Vicinity(loc, r))
		if n < prev {
			t.Errorf("vicinity shrank when radius grew: %d -> %d at r=%v", prev, n, r)
		}
		prev = n
	}
	// D = d covers the center plus its 6 nearest neighbours.
	if n := len(l.Vicinity(loc, 10)); n != 7 {
		t.Errorf("D=d vicinity has %d points, want 7", n)
	}
}

func TestOverlapAndVicinityRatio(t *testing.T) {
	l := mustLattice(t, Point{}, 10)
	a := l.Vicinity(Point{}, 20)
	b := l.Vicinity(Point{X: 10}, 20)
	inter := Overlap(a, b)
	if inter == 0 || inter > len(a) {
		t.Errorf("overlap = %d of %d", inter, len(a))
	}
	ratio := VicinityRatio(a, b)
	if ratio <= 0 || ratio > 1 {
		t.Errorf("ratio = %v", ratio)
	}
	if VicinityRatio(a, nil) != 0 {
		t.Error("empty candidate set should yield 0")
	}
	// Same location → full overlap.
	if VicinityRatio(a, a) != 1 {
		t.Error("identical sets should have ratio 1")
	}
	// Far apart → no overlap.
	far := l.Vicinity(Point{X: 10_000}, 20)
	if Overlap(a, far) != 0 {
		t.Error("distant vicinities should not overlap")
	}
}

func TestAttributesSurviveNormalizationDistinctly(t *testing.T) {
	l := mustLattice(t, Point{}, 10)
	seen := map[string]LatticePoint{}
	for u1 := -5; u1 <= 5; u1++ {
		for u2 := -5; u2 <= 5; u2++ {
			lp := LatticePoint{U1: u1, U2: u2}
			c := l.Attribute(lp).Canonical()
			if prev, dup := seen[c]; dup {
				t.Fatalf("attribute collision: %v and %v both map to %q", prev, lp, c)
			}
			seen[c] = lp
		}
	}
	// A different grid must produce different attributes for the same point.
	l2 := mustLattice(t, Point{X: 1}, 10)
	if l.Attribute(LatticePoint{1, 1}).Equal(l2.Attribute(LatticePoint{1, 1})) {
		t.Error("different grids must not share attributes")
	}
}

func TestVicinityAttributes(t *testing.T) {
	l := mustLattice(t, Point{}, 10)
	attrs, minOpt := l.VicinityAttributes(Point{}, 20, 0.5)
	points := l.Vicinity(Point{}, 20)
	if len(attrs) != len(points) {
		t.Fatalf("attribute count %d != point count %d", len(attrs), len(points))
	}
	want := int(math.Ceil(0.5 * float64(len(points))))
	if minOpt != want {
		t.Errorf("minOptional = %d, want %d", minOpt, want)
	}
	// Threshold clamping.
	if _, m := l.VicinityAttributes(Point{}, 20, 2); m != len(points) {
		t.Errorf("θ>1 should clamp to all points, got %d", m)
	}
	if _, m := l.VicinityAttributes(Point{}, 20, -1); m != 0 {
		t.Errorf("θ<0 should clamp to 0, got %d", m)
	}
}

func TestDynamicKeys(t *testing.T) {
	l := mustLattice(t, Point{}, 10)
	k1 := l.DynamicKey(LatticePoint{0, 0})
	k2 := l.DynamicKey(LatticePoint{0, 1})
	if len(k1) == 0 || string(k1) == string(k2) {
		t.Error("dynamic keys of different points must differ")
	}
	if string(k1) != string(l.DynamicKey(LatticePoint{0, 0})) {
		t.Error("dynamic key must be deterministic")
	}
	keys := l.CandidateDynamicKeys(Point{}, 10)
	if len(keys) != 7 {
		t.Errorf("candidate key count = %d, want 7", len(keys))
	}
	// The initiator's cell key must appear among a nearby user's candidates.
	initKey := l.DynamicKey(l.Nearest(Point{X: 2, Y: 3}))
	found := false
	for _, k := range l.CandidateDynamicKeys(Point{X: 8, Y: 1}, 20) {
		if string(k) == string(initKey) {
			found = true
		}
	}
	if !found {
		t.Error("nearby user's candidate keys must include the initiator's cell key")
	}
}

// Property: users within each other's search range share a large fraction of
// vicinity lattice points; users far outside share none. This is the
// monotonicity the Θ-threshold search relies on.
func TestVicinityOverlapMonotonicityProperty(t *testing.T) {
	l := mustLattice(t, Point{}, 20)
	const radius = 100.0
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Point{X: rng.Float64() * 500, Y: rng.Float64() * 500}
		va := l.Vicinity(a, radius)

		// A user very close by (within one cell) shares most points.
		near := Point{X: a.X + rng.Float64()*10, Y: a.Y + rng.Float64()*10}
		vNear := l.Vicinity(near, radius)
		// A user far away (more than 2·radius + 2 cells) shares none.
		far := Point{X: a.X + 2*radius + 3*20 + rng.Float64()*100, Y: a.Y}
		vFar := l.Vicinity(far, radius)

		if VicinityRatio(va, vNear) < 0.5 {
			return false
		}
		return Overlap(va, vFar) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEncodeToken(t *testing.T) {
	tests := []struct {
		n    int
		want string
	}{
		{0, "pa"},
		{3, "pd"},
		{-3, "nd"},
		{12, "pbc"},
		{-120, "nbca"},
	}
	for _, tt := range tests {
		if got := encodeToken(tt.n); got != tt.want {
			t.Errorf("encodeToken(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}

func TestLatticePointString(t *testing.T) {
	if (LatticePoint{U1: 1, U2: -2}).String() != "(1,-2)" {
		t.Error("String format changed")
	}
}
