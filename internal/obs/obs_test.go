package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionGolden pins the exact exposition output for one registry
// holding every metric kind plus a collector: HELP/TYPE grouping, label
// rendering, cumulative histogram buckets with seconds-denominated le
// bounds, and the +Inf terminal bucket. The format is contractual — the CI
// cluster smoke greps and sums these lines with shell tools.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()

	subs := reg.Counter("sealedbottle_submitted_total", "Bottles accepted.", Label{"op", "submit"})
	subs.Add(41)
	subs.Inc()

	held := reg.Gauge("sealedbottle_held", "Bottles currently held.")
	held.Set(7)

	reg.GaugeFunc("sealedbottle_up", "Always one.", func() float64 { return 1 })

	h := reg.Histogram("sealedbottle_op_latency_seconds", "Per-op latency.",
		[]time.Duration{time.Millisecond, 10 * time.Millisecond}, Label{"op", "sweep"})
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(time.Millisecond)       // bucket 0 (inclusive upper bound)
	h.Observe(2 * time.Millisecond)   // bucket 1
	h.Observe(time.Second)            // +Inf bucket

	reg.RegisterFunc(func(e *Emitter) {
		e.Counter("sealedbottle_collected_total", "From a collector.", 9, Label{"src", `q"x`})
	})

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP sealedbottle_submitted_total Bottles accepted.
# TYPE sealedbottle_submitted_total counter
sealedbottle_submitted_total{op="submit"} 42
# HELP sealedbottle_held Bottles currently held.
# TYPE sealedbottle_held gauge
sealedbottle_held 7
# HELP sealedbottle_up Always one.
# TYPE sealedbottle_up gauge
sealedbottle_up 1
# HELP sealedbottle_op_latency_seconds Per-op latency.
# TYPE sealedbottle_op_latency_seconds histogram
sealedbottle_op_latency_seconds_bucket{op="sweep",le="0.001"} 2
sealedbottle_op_latency_seconds_bucket{op="sweep",le="0.01"} 3
sealedbottle_op_latency_seconds_bucket{op="sweep",le="+Inf"} 4
sealedbottle_op_latency_seconds_sum{op="sweep"} 1.0035
sealedbottle_op_latency_seconds_count{op="sweep"} 4
# HELP sealedbottle_collected_total From a collector.
# TYPE sealedbottle_collected_total counter
sealedbottle_collected_total{src="q\"x"} 9
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExpositionSharedFamily checks that two series under one name share a
// single HELP/TYPE header, and that a collector extending a registered
// family does not repeat it either.
func TestExpositionSharedFamily(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ops_total", "Ops.", Label{"op", "a"}).Inc()
	reg.Counter("ops_total", "Ops.", Label{"op", "b"}).Add(2)
	reg.RegisterFunc(func(e *Emitter) {
		e.Counter("ops_total", "Ops.", 3, Label{"op", "c"})
	})

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := b.String()
	if n := strings.Count(got, "# TYPE ops_total counter"); n != 1 {
		t.Errorf("want exactly one TYPE header, got %d in:\n%s", n, got)
	}
	for _, line := range []string{`ops_total{op="a"} 1`, `ops_total{op="b"} 2`, `ops_total{op="c"} 3`} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("missing %q in:\n%s", line, got)
		}
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	bounds := []time.Duration{time.Millisecond, 10 * time.Millisecond}
	a := NewRegistry().Histogram("h", "", bounds)
	b := NewRegistry().Histogram("h", "", bounds)
	a.Observe(0)
	a.Observe(5 * time.Millisecond)
	b.Observe(5 * time.Millisecond)
	b.Observe(time.Minute)

	sa, sb := a.Snapshot(), b.Snapshot()
	if err := sa.Merge(sb); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if sa.Count != 4 {
		t.Errorf("merged Count = %d, want 4", sa.Count)
	}
	if want := []uint64{1, 2, 1}; len(sa.Counts) != 3 || sa.Counts[0] != want[0] || sa.Counts[1] != want[1] || sa.Counts[2] != want[2] {
		t.Errorf("merged Counts = %v, want %v", sa.Counts, want)
	}
	if want := 10*time.Millisecond + time.Minute; sa.Sum != want {
		t.Errorf("merged Sum = %v, want %v", sa.Sum, want)
	}

	// Mismatched layouts must refuse to merge rather than produce a
	// plausible-looking lie.
	c := NewRegistry().Histogram("h", "", []time.Duration{time.Millisecond})
	if err := sa.Merge(c.Snapshot()); err == nil {
		t.Error("merge across bucket counts: want error, got nil")
	}
	d := NewRegistry().Histogram("h", "", []time.Duration{time.Millisecond, 20 * time.Millisecond})
	if err := sa.Merge(d.Snapshot()); err == nil {
		t.Error("merge across bucket bounds: want error, got nil")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewRegistry().Histogram("h", "", []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond})
	for i := 0; i < 100; i++ {
		h.Observe(500 * time.Microsecond)
	}
	for i := 0; i < 100; i++ {
		h.Observe(5 * time.Millisecond)
	}
	s := h.Snapshot()
	// p50 falls on the boundary of the first bucket; p75 interpolates
	// halfway through the 1ms..10ms bucket.
	if q := s.Quantile(0.5); q != time.Millisecond {
		t.Errorf("p50 = %v, want 1ms", q)
	}
	if q := s.Quantile(0.75); q != 5500*time.Microsecond {
		t.Errorf("p75 = %v, want 5.5ms", q)
	}
	var empty HistogramSnapshot
	if q := empty.Quantile(0.99); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

// TestRecordAllocFree pins the recording hot path at zero allocations —
// instrumentation rides inside paths whose budgets BenchmarkBrokerSubmitDurable
// and the mux alloc tests enforce, so any allocation here would fail those
// gates too.
func TestRecordAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; budgets are pinned by the non-race run")
	}
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h_seconds", "", nil)
	requireZeroAllocs(t, "Counter.Inc", func() { c.Inc() })
	requireZeroAllocs(t, "Gauge.Set", func() { g.Set(3) })
	requireZeroAllocs(t, "Histogram.Observe", func() { h.Observe(3 * time.Millisecond) })
}

func requireZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(200, f); avg != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, avg)
	}
}

// TestConcurrentRecording exercises the lock-free recorders under the race
// detector.
func TestConcurrentRecording(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	h := reg.Histogram("h_seconds", "", nil)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			var b strings.Builder
			if err := reg.WritePrometheus(&b); err != nil {
				t.Errorf("WritePrometheus: %v", err)
			}
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 4000 {
		t.Errorf("counter = %d, want 4000", c.Value())
	}
	if s := h.Snapshot(); s.Count != 4000 {
		t.Errorf("histogram count = %d, want 4000", s.Count)
	}
}

// TestNilRegistry checks the no-op sink contract: instrumented code holds
// metrics from a nil registry without nil checks at record time.
func TestNilRegistry(t *testing.T) {
	var reg *Registry
	reg.Counter("c_total", "").Inc()
	reg.Gauge("g", "").Set(1)
	reg.Histogram("h_seconds", "", nil).Observe(time.Second)
	reg.GaugeFunc("gf", "", func() float64 { return 1 })
	reg.RegisterFunc(func(e *Emitter) {})
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
}

func TestInvalidRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dual", "")
	for name, f := range map[string]func(){
		"bad name":        func() { reg.Counter("bad name", "") },
		"kind mismatch":   func() { reg.Gauge("dual", "") },
		"unsorted bounds": func() { reg.Histogram("h", "", []time.Duration{2, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			f()
		}()
	}
}
