//go:build race

package obs

// raceEnabled reports that the race detector is instrumenting this build;
// its bookkeeping allocates, so allocation-budget tests skip themselves.
const raceEnabled = true
