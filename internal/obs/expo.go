package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
)

// Emitter writes exposition-format lines. Registered metrics render through
// it at scrape time, and Collectors use the same interface to contribute
// series computed from external state (rack Stats, ring health). HELP/TYPE
// headers are emitted once per family name across the whole scrape, so a
// collector extending a registered family (or two collectors sharing one)
// stays parseable.
type Emitter struct {
	w    *bufio.Writer
	seen map[string]bool
}

// header writes the # HELP / # TYPE preamble for name if this scrape has not
// already emitted it.
func (e *Emitter) header(name, help string, kind metricKind) {
	if e.seen[name] {
		return
	}
	e.seen[name] = true
	if help != "" {
		e.w.WriteString("# HELP ")
		e.w.WriteString(name)
		e.w.WriteByte(' ')
		e.w.WriteString(help)
		e.w.WriteByte('\n')
	}
	e.w.WriteString("# TYPE ")
	e.w.WriteString(name)
	e.w.WriteByte(' ')
	e.w.WriteString(kind.String())
	e.w.WriteByte('\n')
}

// sample writes one `name{labels} value` line with a pre-rendered label
// string.
func (e *Emitter) sample(name, labels string, value float64) {
	e.w.WriteString(name)
	e.w.WriteString(labels)
	e.w.WriteByte(' ')
	e.writeFloat(value)
	e.w.WriteByte('\n')
}

func (e *Emitter) writeFloat(v float64) {
	switch {
	case math.IsInf(v, 1):
		e.w.WriteString("+Inf")
	case math.IsInf(v, -1):
		e.w.WriteString("-Inf")
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		// Counters and integer gauges render without an exponent so shell
		// cross-checks (the CI cluster smoke sums sealedbottle_submitted_total
		// with awk) never meet scientific notation.
		var buf [20]byte
		e.w.Write(strconv.AppendInt(buf[:0], int64(v), 10))
	default:
		var buf [24]byte
		e.w.Write(strconv.AppendFloat(buf[:0], v, 'g', -1, 64))
	}
}

// Counter emits one counter sample from a collector.
func (e *Emitter) Counter(name, help string, value uint64, labels ...Label) {
	e.header(name, help, kindCounter)
	e.sample(name, renderLabels(labels), float64(value))
}

// Gauge emits one gauge sample from a collector.
func (e *Emitter) Gauge(name, help string, value float64, labels ...Label) {
	e.header(name, help, kindGauge)
	e.sample(name, renderLabels(labels), value)
}

// Histogram emits a histogram snapshot from a collector under name (which
// should not carry the _bucket/_sum/_count suffixes; they are appended).
func (e *Emitter) Histogram(name, help string, snap HistogramSnapshot, labels ...Label) {
	e.header(name, help, kindHistogram)
	e.histogramSamples(name, renderLabels(labels), snap)
}

// histogramSamples renders the _bucket/_sum/_count series of one histogram.
// Exposition buckets are cumulative and carry the `le` bound in seconds.
func (e *Emitter) histogramSamples(name, labels string, snap HistogramSnapshot) {
	var cum uint64
	for i, c := range snap.Counts {
		cum += c
		bound := infSeconds
		if i < len(snap.Bounds) {
			bound = secondsOf(snap.Bounds[i])
		}
		e.w.WriteString(name)
		e.w.WriteString("_bucket")
		e.writeBucketLabels(labels, bound)
		e.w.WriteByte(' ')
		e.writeFloat(float64(cum))
		e.w.WriteByte('\n')
	}
	e.sample(name+"_sum", labels, secondsOf(snap.Sum))
	e.sample(name+"_count", labels, float64(cum))
}

// writeBucketLabels splices le="<bound>" into a pre-rendered label string.
func (e *Emitter) writeBucketLabels(labels string, bound float64) {
	if labels == "" {
		e.w.WriteString(`{le="`)
	} else {
		// labels is `{k="v",...}`; drop the closing brace and append.
		e.w.WriteString(labels[:len(labels)-1])
		e.w.WriteString(`,le="`)
	}
	if math.IsInf(bound, 1) {
		e.w.WriteString("+Inf")
	} else {
		var buf [24]byte
		e.w.Write(strconv.AppendFloat(buf[:0], bound, 'g', -1, 64))
	}
	e.w.WriteString(`"}`)
}

// WritePrometheus renders every registered metric, then every collector, in
// registration order, as Prometheus text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	families, collectors := r.snapshotFamilies()
	bw := bufio.NewWriterSize(w, 16<<10)
	e := &Emitter{w: bw, seen: make(map[string]bool, len(families))}
	for _, f := range families {
		e.header(f.name, f.help, f.kind)
		for _, m := range f.metrics {
			switch {
			case m.c != nil:
				e.sample(f.name, m.c.labels, float64(m.c.Value()))
			case m.g != nil:
				e.sample(f.name, m.g.labels, float64(m.g.Value()))
			case m.gf != nil:
				e.sample(f.name, m.gf.labels, m.gf.fn())
			case m.h != nil:
				e.histogramSamples(f.name, m.h.labels, m.h.Snapshot())
			}
		}
	}
	for _, c := range collectors {
		c.Collect(e)
	}
	// bufio errors are sticky; Flush surfaces the first write failure.
	return bw.Flush()
}
