//go:build !race

package obs

// raceEnabled reports that the race detector is instrumenting this build.
const raceEnabled = false
