package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry as a Prometheus /metrics endpoint.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Render errors past the header can't be reported to the scraper;
		// a broken pipe mid-scrape is the client's problem.
		_ = r.WritePrometheus(w)
	})
}

// OpsMux builds the process's operational HTTP mux:
//
//	/metrics      — Prometheus exposition of reg
//	/healthz      — liveness: 200 once the process is serving HTTP at all
//	/readyz       — readiness per the ready callback (e.g. WAL replay done,
//	                TLS material loaded); 503 with the reason until then
//	/debug/pprof/ — the standard profiling handlers, mounted explicitly so
//	                the ops mux never depends on http.DefaultServeMux
//
// ready may be nil, in which case /readyz behaves like /healthz. The ops
// port is operational surface, not client surface: bind it to loopback or an
// admin network, never the rack's public address.
func OpsMux(reg *Registry, ready func() error) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready != nil {
			if err := ready(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				w.Write([]byte(err.Error() + "\n"))
				return
			}
		}
		w.Write([]byte("ready\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
