// Package obs is the module's dependency-free observability substrate: a
// metrics registry of counters, gauges and fixed-bucket latency histograms
// that renders the Prometheus text exposition format (expo.go) and mounts as
// an ops HTTP endpoint (http.go). Every layer of the stack — the transport
// server and mux client, the broker's stats bridge, the courier/ring/sweeper
// client side — instruments against this package, so one scrape of a
// bottlerack's /metrics sees the whole submit → sweep → reply pipeline.
//
// Design constraints, in order:
//
//   - Recording must be allocation-free and lock-free: Counter.Inc,
//     Gauge.Set and Histogram.Observe ride single atomics on the submit/sweep
//     hot path, whose alloc budgets are pinned by testing.AllocsPerRun (the
//     PR 7 regression gate). All the rendering cost lives at scrape time.
//   - No dependencies: the exposition format is a line protocol, simple
//     enough to emit directly; pulling a client library in for it would be
//     the module's first external dependency.
//   - Snapshots must merge: a ring aggregates per-rack histograms, and the
//     experiment harness folds per-process snapshots into one report, so
//     HistogramSnapshot.Merge adds same-shaped histograms bucketwise.
//
// Metrics are registered once (registration allocates and may take a lock;
// recording never does). Counters that already exist elsewhere — the rack's
// ShardStats, the replica node's hint counters — are not duplicated into
// registry counters; a Collector bridges them, reading the source once per
// scrape (see RegisterFunc and the broker package's stats collector).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric label pair, rendered as `key="value"` in the
// exposition.
type Label struct {
	Key, Value string
}

// metricKind discriminates a family's exposition TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing counter. The zero value is unusable;
// obtain one from Registry.Counter.
type Counter struct {
	v      atomic.Uint64
	labels string
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable integer-valued gauge. The zero value is unusable;
// obtain one from Registry.Gauge.
type Gauge struct {
	v      atomic.Int64
	labels string
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// gaugeFunc is a gauge whose value is computed at scrape time.
type gaugeFunc struct {
	fn     func() float64
	labels string
}

// DefaultLatencyBuckets is the histogram bucket layout used when a histogram
// is registered with nil bounds: 50µs to 5s in a coarse exponential ladder,
// wide enough to cover an in-memory point lookup and a cross-rack fsynced
// sweep from the same layout (mergeable snapshots require every recorder to
// agree on it).
var DefaultLatencyBuckets = []time.Duration{
	50 * time.Microsecond, 100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
	time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond, 10 * time.Millisecond,
	25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond, 250 * time.Millisecond,
	500 * time.Millisecond, time.Second, 2500 * time.Millisecond, 5 * time.Second,
}

// Histogram is a fixed-bucket latency histogram: Observe records one duration
// into its bucket with two atomic adds and no allocation. Bucket bounds are
// fixed at registration; the exposition renders them in seconds (the
// Prometheus convention for *_seconds histograms). The zero value is
// unusable; obtain one from Registry.Histogram.
type Histogram struct {
	// bounds are the inclusive upper bounds in nanoseconds, ascending; an
	// implicit +Inf bucket follows the last.
	bounds []int64
	// counts[i] is the number of observations in bucket i (NOT cumulative;
	// the exposition accumulates). len(counts) == len(bounds)+1.
	counts []atomic.Uint64
	sum    atomic.Int64 // summed nanoseconds
	labels string
}

// Observe records one duration. It is lock-free and allocation-free.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := 0
	for ; i < len(h.bounds); i++ {
		if ns <= h.bounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.sum.Add(ns)
}

// HistogramSnapshot is a point-in-time copy of a histogram, mergeable with
// same-shaped snapshots. Because recording is lock-free, a snapshot taken
// under concurrent writes may be torn by a handful of observations — fine
// for monitoring, not a consistency point.
type HistogramSnapshot struct {
	// Bounds are the inclusive bucket upper bounds, ascending; an implicit
	// +Inf bucket follows the last.
	Bounds []time.Duration
	// Counts are per-bucket (non-cumulative) observation counts,
	// len(Bounds)+1.
	Counts []uint64
	// Count is the total number of observations.
	Count uint64
	// Sum is the sum of all observed durations.
	Sum time.Duration
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: make([]time.Duration, len(h.bounds)),
		Counts: make([]uint64, len(h.counts)),
		Sum:    time.Duration(h.sum.Load()),
	}
	for i, b := range h.bounds {
		s.Bounds[i] = time.Duration(b)
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Merge adds other into s bucketwise. The two snapshots must share a bucket
// layout — merged histograms only mean anything when every recorder agreed
// on the bounds.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) error {
	if len(s.Bounds) != len(other.Bounds) {
		return fmt.Errorf("obs: merging histograms with %d vs %d buckets", len(s.Bounds), len(other.Bounds))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != other.Bounds[i] {
			return fmt.Errorf("obs: merging histograms with mismatched bucket bound %v vs %v", s.Bounds[i], other.Bounds[i])
		}
	}
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Count += other.Count
	s.Sum += other.Sum
	return nil
}

// Quantile estimates the q-quantile (0..1) from the bucket counts by linear
// interpolation within the containing bucket — the same estimate a
// Prometheus histogram_quantile produces from this data.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		var lo, hi float64
		if i < len(s.Bounds) {
			hi = float64(s.Bounds[i])
		} else {
			// The +Inf bucket has no upper bound; report its lower edge (the
			// largest finite bound) rather than inventing one.
			return s.Bounds[len(s.Bounds)-1]
		}
		if i > 0 {
			lo = float64(s.Bounds[i-1])
		}
		return time.Duration(lo + (hi-lo)*(rank-prev)/float64(c))
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// metric is one registered series within a family.
type metric struct {
	c  *Counter
	g  *Gauge
	gf *gaugeFunc
	h  *Histogram
}

// family groups the series sharing one metric name; the exposition emits one
// HELP/TYPE header per family.
type family struct {
	name    string
	help    string
	kind    metricKind
	metrics []metric
}

// Collector contributes scrape-time series computed from state that lives
// outside the registry (the rack's Stats, a ring's health table). Collect is
// called once per exposition, after the registered metrics.
type Collector interface {
	Collect(e *Emitter)
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(e *Emitter)

// Collect calls f.
func (f CollectorFunc) Collect(e *Emitter) { f(e) }

// Registry holds registered metrics and collectors and renders them in
// registration order. Registration is synchronized and may allocate;
// recording against the returned metrics never does. A nil *Registry is a
// valid no-op sink: every Register* method returns a usable (but unexported
// and never-rendered) metric, so instrumented code does not nil-check.
type Registry struct {
	mu         sync.Mutex
	families   []*family
	byName     map[string]*family
	collectors []Collector
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// add registers one series under name, creating or extending its family.
// Mixed kinds under one name are a programming error and panic — the
// exposition could not render them.
func (r *Registry) add(name, help string, kind metricKind, m metric) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %v and %v", name, f.kind, kind))
	}
	f.metrics = append(f.metrics, m)
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{labels: renderLabels(labels)}
	if r != nil {
		r.add(name, help, kindCounter, metric{c: c})
	}
	return c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{labels: renderLabels(labels)}
	if r != nil {
		r.add(name, help, kindGauge, metric{g: g})
	}
	return g
}

// GaugeFunc registers a gauge series whose value fn computes at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.add(name, help, kindGauge, metric{gf: &gaugeFunc{fn: fn, labels: renderLabels(labels)}})
}

// Histogram registers and returns a histogram series. A nil bounds slice
// uses DefaultLatencyBuckets; explicit bounds must be ascending.
func (r *Registry) Histogram(name, help string, bounds []time.Duration, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	h := &Histogram{
		bounds: make([]int64, len(bounds)),
		counts: make([]atomic.Uint64, len(bounds)+1),
		labels: renderLabels(labels),
	}
	for i, b := range bounds {
		if i > 0 && int64(b) <= h.bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %v", name, b))
		}
		h.bounds[i] = int64(b)
	}
	if r != nil {
		r.add(name, help, kindHistogram, metric{h: h})
	}
	return h
}

// Register adds a scrape-time collector; collectors run after the registered
// metrics, in registration order.
func (r *Registry) Register(c Collector) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// RegisterFunc adds a scrape-time collector function.
func (r *Registry) RegisterFunc(fn func(e *Emitter)) { r.Register(CollectorFunc(fn)) }

// snapshotFamilies copies the family/collector lists so the exposition
// renders without holding the registration lock.
func (r *Registry) snapshotFamilies() ([]*family, []Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*family(nil), r.families...), append([]Collector(nil), r.collectors...)
}

// validMetricName enforces the Prometheus metric-name charset
// ([a-zA-Z_:][a-zA-Z0-9_:]*); rejecting bad names at registration keeps the
// scrape output parseable no matter what.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels renders a label set once, at registration, into the exact
// `{k="v",...}` byte form the exposition writes — recording pays nothing and
// scraping pays a copy.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// secondsOf converts a duration bound to the seconds float the exposition
// renders.
func secondsOf(d time.Duration) float64 {
	return float64(d) / float64(time.Second)
}

// infSeconds marks the +Inf bucket bound.
var infSeconds = math.Inf(1)
