package msn

import (
	"math"
	"time"
)

// Node is a device participating in the ad-hoc network.
type Node struct {
	// ID is the node's stable identifier.
	ID NodeID

	pos      Position
	speed    float64 // meters per second; zero means stationary
	waypoint Position
	handler  Handler

	// seen de-duplicates flooded message IDs.
	seen map[string]struct{}
	// reversePath remembers the neighbour a flooded message was first
	// received from, keyed by message ID; replies walk this chain back.
	reversePath map[string]NodeID
	// lastRelay tracks the last time a request from a given origin was
	// relayed, for the DoS rate limit.
	lastRelay map[NodeID]time.Time
}

func newNode(id NodeID, pos Position, handler Handler) *Node {
	return &Node{
		ID:          id,
		pos:         pos,
		handler:     handler,
		seen:        make(map[string]struct{}),
		reversePath: make(map[string]NodeID),
		lastRelay:   make(map[NodeID]time.Time),
	}
}

// Position returns the node's current position.
func (n *Node) Position() Position { return n.pos }

// SetPosition teleports the node (useful for scripted scenarios and tests).
func (n *Node) SetPosition(p Position) { n.pos = p }

// Speed returns the node's mobility speed in m/s.
func (n *Node) Speed() float64 { return n.speed }

// SetSpeed sets the node's mobility speed in m/s (0 disables movement).
func (n *Node) SetSpeed(v float64) {
	if v < 0 {
		v = 0
	}
	n.speed = v
}

// HasSeen reports whether a flooded message ID was already processed.
func (n *Node) HasSeen(id string) bool {
	_, ok := n.seen[id]
	return ok
}

// NextHopToward returns the reverse-path neighbour for a request ID, if any.
func (n *Node) NextHopToward(requestID string) (NodeID, bool) {
	hop, ok := n.reversePath[requestID]
	return hop, ok
}

// distance returns the Euclidean distance between two positions.
func distance(a, b Position) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

// advanceToward moves the node toward its waypoint by speed·dt, returning
// true when the waypoint was reached (so a new one should be drawn).
func (n *Node) advanceToward(dt time.Duration) bool {
	if n.speed <= 0 {
		return false
	}
	step := n.speed * dt.Seconds()
	d := distance(n.pos, n.waypoint)
	if d <= step || d == 0 {
		n.pos = n.waypoint
		return true
	}
	n.pos.X += (n.waypoint.X - n.pos.X) / d * step
	n.pos.Y += (n.waypoint.Y - n.pos.Y) / d * step
	return false
}
