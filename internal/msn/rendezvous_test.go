package msn

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"sealedbottle/internal/attr"
	"sealedbottle/internal/broker"
	"sealedbottle/internal/core"
)

// rendezvousOutcome summarizes one broker-backed scenario run for the
// determinism comparison.
type rendezvousOutcome struct {
	matches     []string // "requester<-peer" pairs
	peerMatches []string
	stats       broker.Stats
}

// runRendezvousScenario stands up three nodes on a shared bottle rack driven
// by the simulated clock: alice searches, bob matches, carol does not.
func runRendezvousScenario(t *testing.T, seed int64) rendezvousOutcome {
	t.Helper()
	sim := NewSimulator(Config{Seed: seed})
	rack := broker.New(broker.Config{Shards: 4, Workers: 2, ReapInterval: -1, Now: sim.Now})
	defer rack.Close()

	spec := core.RequestSpec{
		Necessary: []attr.Attribute{attr.MustNew("university", "tsinghua")},
		Optional: []attr.Attribute{
			attr.MustNew("interest", "basketball"),
			attr.MustNew("interest", "chess"),
			attr.MustNew("interest", "go"),
		},
		MinOptional: 2,
	}
	profiles := map[NodeID]*attr.Profile{
		"alice": attr.NewProfile(
			attr.MustNew("university", "tsinghua"),
			attr.MustNew("interest", "basketball"),
			attr.MustNew("interest", "chess"),
			attr.MustNew("interest", "go"),
		),
		"bob": attr.NewProfile(
			attr.MustNew("university", "tsinghua"),
			attr.MustNew("interest", "basketball"),
			attr.MustNew("interest", "chess"),
			attr.MustNew("interest", "cooking"),
		),
		"carol": attr.NewProfile(
			attr.MustNew("university", "pku"),
			attr.MustNew("interest", "opera"),
			attr.MustNew("interest", "cinema"),
		),
	}
	apps := make(map[NodeID]*FriendingApp, len(profiles))
	order := []NodeID{"alice", "bob", "carol"}
	for i, id := range order {
		app, _, err := NewFriendingApp(sim, id, Position{X: float64(i) * 400, Y: 0}, FriendingConfig{
			Profile:    profiles[id],
			Rand:       newDetReader(seed + int64(i)),
			Rendezvous: rack,
			Participant: core.ParticipantConfig{
				Matcher: core.MatcherConfig{AllowCollisionSkip: true},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		apps[id] = app
	}
	if err := AttachRendezvous(context.Background(), sim, 100*time.Millisecond, apps["alice"], apps["bob"], apps["carol"]); err != nil {
		t.Fatal(err)
	}

	reqID, err := apps["alice"].StartSearch(spec, SearchOptions{
		Protocol: core.Protocol1,
		Rand:     newDetReader(seed + 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.RunFor(2 * time.Second)

	var out rendezvousOutcome
	for _, id := range order {
		for rid, ms := range apps[id].Matches() {
			if rid != reqID {
				t.Fatalf("unexpected request id %q", rid)
			}
			for _, m := range ms {
				out.matches = append(out.matches, fmt.Sprintf("%s<-%s", id, m.Peer))
			}
		}
		for _, pm := range apps[id].PeerMatches() {
			out.peerMatches = append(out.peerMatches, fmt.Sprintf("%s:%s@%s", id, pm.Initiator, pm.At.Format(time.RFC3339Nano)))
		}
	}
	sort.Strings(out.matches)
	sort.Strings(out.peerMatches)
	out.stats = rackStats(rack)
	return out
}

func TestRendezvousFriendingProtocol1(t *testing.T) {
	out := runRendezvousScenario(t, 42)
	if len(out.matches) != 1 || out.matches[0] != "alice<-bob" {
		t.Fatalf("matches = %v, want [alice<-bob]", out.matches)
	}
	if len(out.peerMatches) != 1 {
		t.Fatalf("peer matches = %v, want exactly bob's", out.peerMatches)
	}
	st := out.stats
	if st.Held != 1 {
		t.Fatalf("rack held = %d, want alice's bottle", st.Held)
	}
	if st.Totals.RepliesIn != 1 || st.Totals.RepliesOut != 1 {
		t.Fatalf("reply flow = %d in / %d out, want 1/1", st.Totals.RepliesIn, st.Totals.RepliesOut)
	}
	// Carol must have been dismissed by the residue prefilter or the full
	// matcher without ever producing a reply; either way no extra replies.
	if st.Totals.Scanned == 0 {
		t.Fatal("sweeps never scanned the bottle")
	}
}

// TestRendezvousDeterminism re-runs the identical broker-backed scenario and
// demands byte-identical outcomes, including the rack's counter totals —
// the property that makes broker-mode simulations reproducible.
func TestRendezvousDeterminism(t *testing.T) {
	a := runRendezvousScenario(t, 7)
	b := runRendezvousScenario(t, 7)
	if fmt.Sprintf("%v", a.matches) != fmt.Sprintf("%v", b.matches) {
		t.Fatalf("matches diverged: %v vs %v", a.matches, b.matches)
	}
	if fmt.Sprintf("%v", a.peerMatches) != fmt.Sprintf("%v", b.peerMatches) {
		t.Fatalf("peer matches diverged: %v vs %v", a.peerMatches, b.peerMatches)
	}
	if fmt.Sprintf("%+v", a.stats.Totals) != fmt.Sprintf("%+v", b.stats.Totals) {
		t.Fatalf("rack totals diverged:\n a: %+v\n b: %+v", a.stats.Totals, b.stats.Totals)
	}
}

// TestRendezvousExpiryDropsBottle checks that simulated time drives broker
// expiry: after the validity window the bottle is reaped and late sweeps
// return nothing.
func TestRendezvousExpiryDropsBottle(t *testing.T) {
	sim := NewSimulator(Config{Seed: 3})
	rack := broker.New(broker.Config{Shards: 2, Workers: 1, ReapInterval: -1, Now: sim.Now})
	defer rack.Close()

	app, _, err := NewFriendingApp(sim, "alice", Position{}, FriendingConfig{
		Profile:    attr.NewProfile(attr.MustNew("interest", "chess")),
		Rand:       newDetReader(1),
		Rendezvous: rack,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.StartSearch(core.PerfectMatch(attr.MustNew("interest", "chess")), SearchOptions{
		Validity: time.Second,
		Rand:     newDetReader(2),
	}); err != nil {
		t.Fatal(err)
	}
	if st := rackStats(rack); st.Held != 1 {
		t.Fatalf("held = %d, want 1", st.Held)
	}
	sim.RunFor(2 * time.Second)
	if n := rack.Reap(); n != 1 {
		t.Fatalf("Reap = %d, want 1", n)
	}
	if st := rackStats(rack); st.Held != 0 {
		t.Fatalf("held after expiry = %d, want 0", st.Held)
	}
}

// TestDrainTerminatesWithPeriodicHooks guards Drain against the livelock a
// self-rescheduling Every hook (or mobility tick) would otherwise cause.
func TestDrainTerminatesWithPeriodicHooks(t *testing.T) {
	sim := NewSimulator(Config{MobilityInterval: time.Second})
	ticks := 0
	if err := sim.Every(time.Second, func(time.Time) { ticks++ }); err != nil {
		t.Fatal(err)
	}
	if n := sim.Drain(); n != 0 {
		t.Fatalf("Drain with only periodic events processed %d, want 0", n)
	}
	// With a delivery pending, Drain must process it (and any periodic events
	// scheduled before it) and then stop again.
	alice, _, err := NewFriendingApp(sim, "alice", Position{}, FriendingConfig{
		Profile: attr.NewProfile(attr.MustNew("interest", "chess")),
		Rand:    newDetReader(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewFriendingApp(sim, "bob", Position{X: 10}, FriendingConfig{
		Profile: attr.NewProfile(attr.MustNew("interest", "chess")),
		Rand:    newDetReader(2),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.StartSearch(core.PerfectMatch(attr.MustNew("interest", "chess")), SearchOptions{
		Rand: newDetReader(3),
	}); err != nil {
		t.Fatal(err)
	}
	if n := sim.Drain(); n == 0 {
		t.Fatal("Drain ignored a pending delivery")
	}
	if len(alice.Matches()) != 1 {
		t.Fatalf("matches = %d, want 1", len(alice.Matches()))
	}
}

func TestEveryValidation(t *testing.T) {
	sim := NewSimulator(Config{})
	if err := sim.Every(0, func(time.Time) {}); err == nil {
		t.Fatal("Every must reject a non-positive interval")
	}
	if err := sim.Every(time.Second, nil); err == nil {
		t.Fatal("Every must reject a nil hook")
	}
	ticks := 0
	if err := sim.Every(time.Second, func(time.Time) { ticks++ }); err != nil {
		t.Fatal(err)
	}
	sim.RunFor(5500 * time.Millisecond)
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
}

// rackStats snapshots an in-process rack's counters for assertions.
func rackStats(r *broker.Rack) broker.Stats {
	st, err := r.Stats(context.Background())
	if err != nil {
		panic(err)
	}
	return st
}
