package msn

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sealedbottle/internal/attr"
	"sealedbottle/internal/core"
)

// detReader is a deterministic randomness source for reproducible tests.
type detReader struct{ rng *rand.Rand }

func newDetReader(seed int64) *detReader { return &detReader{rng: rand.New(rand.NewSource(seed))} }

func (d *detReader) Read(p []byte) (int, error) { return d.rng.Read(p) }

func profileOf(values ...string) *attr.Profile {
	attrs := make([]attr.Attribute, len(values))
	for i, v := range values {
		attrs[i] = attr.MustNew("tag", v)
	}
	return attr.NewProfile(attrs...)
}

func addFriendingNode(t *testing.T, sim *Simulator, id NodeID, pos Position, profile *attr.Profile, seed int64) *FriendingApp {
	t.Helper()
	app, _, err := NewFriendingApp(sim, id, pos, FriendingConfig{
		Profile: profile,
		Participant: core.ParticipantConfig{
			Matcher: core.MatcherConfig{AllowCollisionSkip: true},
		},
		Rand: newDetReader(seed),
	})
	if err != nil {
		t.Fatalf("NewFriendingApp(%s): %v", id, err)
	}
	return app
}

func TestFriendingAppValidation(t *testing.T) {
	sim := NewSimulator(Config{})
	if _, _, err := NewFriendingApp(nil, "x", Position{}, FriendingConfig{Profile: profileOf("a")}); err == nil {
		t.Error("nil simulator should fail")
	}
	if _, _, err := NewFriendingApp(sim, "x", Position{}, FriendingConfig{}); err == nil {
		t.Error("empty profile should fail")
	}
	if _, _, err := NewFriendingApp(sim, "x", Position{}, FriendingConfig{Profile: attr.NewProfile()}); err == nil {
		t.Error("empty profile should fail")
	}
	app := addFriendingNode(t, sim, "ok", Position{}, profileOf("a"), 1)
	if app.Participant() == nil {
		t.Error("participant not exposed")
	}
	if _, _, err := NewFriendingApp(sim, "ok", Position{}, FriendingConfig{Profile: profileOf("a")}); err == nil {
		t.Error("duplicate node id should fail")
	}
}

func TestProtocol1FriendingOverMultipleHops(t *testing.T) {
	// Line topology: alice — relay1 — relay2 — bob. Only bob matches the
	// request; the request floods out and bob's reply is routed back, after
	// which both ends hold the same channel key.
	sim := NewSimulator(Config{Range: 100, Latency: time.Millisecond, Seed: 5})

	alice := addFriendingNode(t, sim, "alice", Position{X: 0}, profileOf("initiator", "placeholder"), 10)
	addFriendingNode(t, sim, "relay1", Position{X: 80}, profileOf("cooking", "gardening"), 11)
	addFriendingNode(t, sim, "relay2", Position{X: 160}, profileOf("sailing", "surfing"), 12)
	bob := addFriendingNode(t, sim, "bob", Position{X: 240}, profileOf("male", "columbia", "basketball", "chess"), 13)

	spec := core.RequestSpec{
		Necessary:   []attr.Attribute{attr.MustNew("tag", "male"), attr.MustNew("tag", "columbia")},
		Optional:    []attr.Attribute{attr.MustNew("tag", "basketball"), attr.MustNew("tag", "chess"), attr.MustNew("tag", "golf")},
		MinOptional: 2,
	}
	reqID, err := alice.StartSearch(spec, SearchOptions{Protocol: core.Protocol1, Rand: newDetReader(20)})
	if err != nil {
		t.Fatal(err)
	}
	sim.Drain()

	matches := alice.Matches()[reqID]
	if len(matches) != 1 {
		t.Fatalf("alice has %d matches, want 1 (rejections: %v)", len(matches), alice.Rejections())
	}
	if matches[0].Peer != "bob" {
		t.Errorf("matched peer = %q", matches[0].Peer)
	}
	peer := bob.PeerMatches()
	if len(peer) != 1 {
		t.Fatalf("bob recorded %d peer matches, want 1", len(peer))
	}
	if peer[0].Initiator != "alice" || peer[0].RequestID != reqID {
		t.Errorf("peer match = %+v", peer[0])
	}
	if !matches[0].ChannelKey.Equal(peer[0].ChannelKey) {
		t.Error("the two ends derived different channel keys")
	}
	if init, ok := alice.Initiator(reqID); !ok || len(init.Matches()) != 1 {
		t.Error("Initiator lookup failed")
	}
}

func TestProtocol2FriendingOnlyInitiatorLearnsResult(t *testing.T) {
	sim := NewSimulator(Config{Range: 100, Latency: time.Millisecond, Seed: 6})

	alice := addFriendingNode(t, sim, "alice", Position{X: 0}, profileOf("whatever"), 30)
	bob := addFriendingNode(t, sim, "bob", Position{X: 80}, profileOf("male", "columbia", "basketball", "chess"), 31)
	carol := addFriendingNode(t, sim, "carol", Position{X: 160}, profileOf("female", "painting"), 32)

	spec := core.RequestSpec{
		Necessary:   []attr.Attribute{attr.MustNew("tag", "male"), attr.MustNew("tag", "columbia")},
		Optional:    []attr.Attribute{attr.MustNew("tag", "basketball"), attr.MustNew("tag", "chess"), attr.MustNew("tag", "golf")},
		MinOptional: 2,
	}
	reqID, err := alice.StartSearch(spec, SearchOptions{Protocol: core.Protocol2, Rand: newDetReader(40)})
	if err != nil {
		t.Fatal(err)
	}
	sim.Drain()

	matches := alice.Matches()[reqID]
	if len(matches) != 1 || matches[0].Peer != "bob" {
		t.Fatalf("alice matches = %+v", matches)
	}
	// Under Protocol 2 no participant can verify locally.
	if len(bob.PeerMatches()) != 0 || len(carol.PeerMatches()) != 0 {
		t.Error("Protocol 2 participants must not learn the matching result locally")
	}
}

func TestFriendingNoMatchProducesNoMatches(t *testing.T) {
	sim := NewSimulator(Config{Range: 100, Latency: time.Millisecond, Seed: 8})
	alice := addFriendingNode(t, sim, "alice", Position{X: 0}, profileOf("self"), 50)
	addFriendingNode(t, sim, "bob", Position{X: 80}, profileOf("unrelated", "profile"), 51)

	spec := core.PerfectMatch(attr.MustNew("tag", "nonexistent"), attr.MustNew("tag", "combination"))
	reqID, err := alice.StartSearch(spec, SearchOptions{Protocol: core.Protocol1, Rand: newDetReader(60)})
	if err != nil {
		t.Fatal(err)
	}
	sim.Drain()
	if len(alice.Matches()[reqID]) != 0 {
		t.Error("no one should have matched")
	}
}

func TestFriendingMultipleMatchesCommunity(t *testing.T) {
	// Several matching users: the initiator collects all of them (community
	// discovery, Section III-F) and can derive a distinct pairwise key per
	// member while x serves as the group key.
	sim := NewSimulator(Config{Range: 300, Latency: time.Millisecond, Seed: 9})
	alice := addFriendingNode(t, sim, "alice", Position{X: 0}, profileOf("self"), 70)
	matchProfile := profileOf("male", "columbia", "basketball")
	for i := 0; i < 3; i++ {
		addFriendingNode(t, sim, NodeID(fmt.Sprintf("peer%d", i)), Position{X: float64(50 + i*40)}, matchProfile, int64(71+i))
	}
	addFriendingNode(t, sim, "outsider", Position{X: 200}, profileOf("other"), 80)

	spec := core.PerfectMatch(
		attr.MustNew("tag", "male"), attr.MustNew("tag", "columbia"), attr.MustNew("tag", "basketball"))
	reqID, err := alice.StartSearch(spec, SearchOptions{Protocol: core.Protocol1, Rand: newDetReader(90)})
	if err != nil {
		t.Fatal(err)
	}
	sim.Drain()

	matches := alice.Matches()[reqID]
	if len(matches) != 3 {
		t.Fatalf("matches = %d, want 3", len(matches))
	}
	keys := map[string]bool{}
	for _, m := range matches {
		keys[string(m.ChannelKey[:])] = true
	}
	if len(keys) != 3 {
		t.Error("pairwise channel keys should be distinct per member")
	}
}

func TestFriendingIgnoresMalformedPayloads(t *testing.T) {
	sim := NewSimulator(Config{Range: 100, Latency: time.Millisecond})
	addFriendingNode(t, sim, "alice", Position{X: 0}, profileOf("a"), 1)
	bob := addFriendingNode(t, sim, "bob", Position{X: 50}, profileOf("b"), 2)

	// Garbage request payload: dropped without forwarding or panicking.
	if err := sim.Originate("alice", &Message{Kind: KindRequest, ID: "junk", Payload: []byte("garbage")}); err != nil {
		t.Fatal(err)
	}
	// Reply that correlates to nothing.
	if err := sim.Originate("alice", &Message{Kind: KindReply, ID: "r", Correlate: "junk", Destination: "bob", Payload: []byte("garbage")}); err != nil {
		t.Fatal(err)
	}
	sim.Drain()
	if len(bob.PeerMatches()) != 0 || len(bob.Matches()) != 0 {
		t.Error("garbage should not produce matches")
	}
}

func TestStartSearchErrors(t *testing.T) {
	sim := NewSimulator(Config{})
	alice := addFriendingNode(t, sim, "alice", Position{}, profileOf("a"), 1)
	if _, err := alice.StartSearch(core.RequestSpec{}, SearchOptions{}); err == nil {
		t.Error("empty spec should fail")
	}
}
