package msn

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"sealedbottle/internal/attr"
	"sealedbottle/internal/broker"
	"sealedbottle/internal/client"
	"sealedbottle/internal/core"
)

// clusterOutcome summarizes one cluster-backed scenario run for the
// determinism comparison.
type clusterOutcome struct {
	matches     []string
	peerMatches []string
	totals      broker.ShardStats
	heldByRack  []int
}

// runClusterScenario is the broker-backed friending scenario of
// rendezvous_test.go with the single rack replaced by a three-rack cluster
// behind a client.Ring: alice searches, bob matches, carol does not, and
// nobody's code knows it is talking to more than one rack.
func runClusterScenario(t *testing.T, seed int64) clusterOutcome {
	t.Helper()
	sim := NewSimulator(Config{Seed: seed})
	racks := make([]*broker.Rack, 3)
	ringCfg := client.RingConfig{ProbeInterval: -1}
	for i := range racks {
		racks[i] = broker.New(broker.Config{
			Shards: 2, Workers: 1, ReapInterval: -1, Now: sim.Now,
			RackTag: fmt.Sprintf("r%d", i),
		})
		defer racks[i].Close()
		ringCfg.Backends = append(ringCfg.Backends, client.RingBackend{
			Name: fmt.Sprintf("rack-%d", i), Backend: racks[i],
		})
	}
	ring, err := client.NewRing(ringCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ring.Close()

	spec := core.RequestSpec{
		Necessary: []attr.Attribute{attr.MustNew("university", "tsinghua")},
		Optional: []attr.Attribute{
			attr.MustNew("interest", "basketball"),
			attr.MustNew("interest", "chess"),
			attr.MustNew("interest", "go"),
		},
		MinOptional: 2,
	}
	profiles := map[NodeID]*attr.Profile{
		"alice": attr.NewProfile(
			attr.MustNew("university", "tsinghua"),
			attr.MustNew("interest", "basketball"),
			attr.MustNew("interest", "chess"),
			attr.MustNew("interest", "go"),
		),
		"bob": attr.NewProfile(
			attr.MustNew("university", "tsinghua"),
			attr.MustNew("interest", "basketball"),
			attr.MustNew("interest", "chess"),
			attr.MustNew("interest", "cooking"),
		),
		"carol": attr.NewProfile(
			attr.MustNew("university", "pku"),
			attr.MustNew("interest", "opera"),
			attr.MustNew("interest", "cinema"),
		),
	}
	apps := make(map[NodeID]*FriendingApp, len(profiles))
	order := []NodeID{"alice", "bob", "carol"}
	for i, id := range order {
		app, _, err := NewFriendingApp(sim, id, Position{X: float64(i) * 400, Y: 0}, FriendingConfig{
			Profile:    profiles[id],
			Rand:       newDetReader(seed + int64(i)),
			Rendezvous: ring,
			Participant: core.ParticipantConfig{
				Matcher: core.MatcherConfig{AllowCollisionSkip: true},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		apps[id] = app
	}
	if err := AttachRendezvous(context.Background(), sim, 100*time.Millisecond, apps["alice"], apps["bob"], apps["carol"]); err != nil {
		t.Fatal(err)
	}

	reqID, err := apps["alice"].StartSearch(spec, SearchOptions{
		Protocol: core.Protocol1,
		Rand:     newDetReader(seed + 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.RunFor(2 * time.Second)

	var out clusterOutcome
	for _, id := range order {
		for rid, ms := range apps[id].Matches() {
			if rid != reqID {
				t.Fatalf("unexpected request id %q", rid)
			}
			for _, m := range ms {
				out.matches = append(out.matches, fmt.Sprintf("%s<-%s", id, m.Peer))
			}
		}
		for _, pm := range apps[id].PeerMatches() {
			out.peerMatches = append(out.peerMatches, fmt.Sprintf("%s:%s@%s", id, pm.Initiator, pm.At.Format(time.RFC3339Nano)))
		}
	}
	sort.Strings(out.matches)
	sort.Strings(out.peerMatches)
	st, err := ring.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out.totals = st.Totals
	for _, rack := range racks {
		out.heldByRack = append(out.heldByRack, rackStats(rack).Held)
	}
	return out
}

// TestClusterRendezvousFriending proves the friending protocol runs
// unchanged over a three-rack cluster: the match still lands, the reply
// routes from bob's sweep rack back to alice's fetch, and exactly one rack
// holds the bottle.
func TestClusterRendezvousFriending(t *testing.T) {
	out := runClusterScenario(t, 42)
	if len(out.matches) != 1 || out.matches[0] != "alice<-bob" {
		t.Fatalf("matches = %v, want [alice<-bob]", out.matches)
	}
	if len(out.peerMatches) != 1 {
		t.Fatalf("peer matches = %v, want exactly bob's", out.peerMatches)
	}
	if out.totals.RepliesIn != 1 || out.totals.RepliesOut != 1 {
		t.Fatalf("cluster reply flow = %d in / %d out, want 1/1", out.totals.RepliesIn, out.totals.RepliesOut)
	}
	held, racksHolding := 0, 0
	for _, h := range out.heldByRack {
		held += h
		if h > 0 {
			racksHolding++
		}
	}
	if held != 1 || racksHolding != 1 {
		t.Fatalf("heldByRack = %v, want exactly one bottle on exactly one rack", out.heldByRack)
	}
	if out.totals.Scanned == 0 {
		t.Fatal("cluster sweeps never scanned the bottle")
	}
}

// TestClusterRendezvousDeterminism re-runs the identical cluster scenario
// and demands identical outcomes, including per-rack placement — rendezvous
// hashing and the rack-ordered sweep merge make the cluster as reproducible
// as a single rack.
func TestClusterRendezvousDeterminism(t *testing.T) {
	a := runClusterScenario(t, 7)
	b := runClusterScenario(t, 7)
	if fmt.Sprintf("%v", a.matches) != fmt.Sprintf("%v", b.matches) {
		t.Fatalf("matches diverged: %v vs %v", a.matches, b.matches)
	}
	if fmt.Sprintf("%v", a.peerMatches) != fmt.Sprintf("%v", b.peerMatches) {
		t.Fatalf("peer matches diverged: %v vs %v", a.peerMatches, b.peerMatches)
	}
	if fmt.Sprintf("%+v", a.totals) != fmt.Sprintf("%+v", b.totals) {
		t.Fatalf("cluster totals diverged:\n a: %+v\n b: %+v", a.totals, b.totals)
	}
	if fmt.Sprintf("%v", a.heldByRack) != fmt.Sprintf("%v", b.heldByRack) {
		t.Fatalf("placement diverged: %v vs %v", a.heldByRack, b.heldByRack)
	}
}

// TestClusterRendezvousSurvivesRackLoss kills the one rack that does NOT
// hold alice's bottle mid-scenario and checks the flow still completes: the
// cluster keeps serving through the loss of a rack that holds none of the
// state in flight.
func TestClusterRendezvousSurvivesRackLoss(t *testing.T) {
	sim := NewSimulator(Config{Seed: 11})
	racks := make([]*broker.Rack, 3)
	ringCfg := client.RingConfig{ProbeInterval: -1, FailThreshold: 1}
	for i := range racks {
		racks[i] = broker.New(broker.Config{
			Shards: 2, Workers: 1, ReapInterval: -1, Now: sim.Now,
			RackTag: fmt.Sprintf("r%d", i),
		})
		ringCfg.Backends = append(ringCfg.Backends, client.RingBackend{
			Name: fmt.Sprintf("rack-%d", i), Backend: racks[i],
		})
	}
	ring, err := client.NewRing(ringCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ring.Close()

	alice, _, err := NewFriendingApp(sim, "alice", Position{}, FriendingConfig{
		Profile: attr.NewProfile(
			attr.MustNew("interest", "chess"),
			attr.MustNew("interest", "go"),
		),
		Rand:       newDetReader(1),
		Rendezvous: ring,
		Participant: core.ParticipantConfig{
			Matcher: core.MatcherConfig{AllowCollisionSkip: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	bob, _, err := NewFriendingApp(sim, "bob", Position{X: 400}, FriendingConfig{
		Profile: attr.NewProfile(
			attr.MustNew("interest", "chess"),
			attr.MustNew("interest", "go"),
		),
		Rand:       newDetReader(2),
		Rendezvous: ring,
		Participant: core.ParticipantConfig{
			Matcher: core.MatcherConfig{AllowCollisionSkip: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := AttachRendezvous(context.Background(), sim, 100*time.Millisecond, alice, bob); err != nil {
		t.Fatal(err)
	}
	reqID, err := alice.StartSearch(core.RequestSpec{
		Necessary: []attr.Attribute{attr.MustNew("interest", "chess")},
		Optional: []attr.Attribute{
			attr.MustNew("interest", "go"),
			attr.MustNew("interest", "shogi"),
		},
		MinOptional: 1,
	}, SearchOptions{Protocol: core.Protocol1, Rand: newDetReader(3)})
	if err != nil {
		t.Fatal(err)
	}

	// Close every rack that does not hold the bottle: the flow must finish
	// on the survivor alone (closed racks fail at the "transport" with
	// ErrRackClosed and are ejected after the first fault).
	closed := 0
	for _, rack := range racks {
		if rackStats(rack).Held == 0 {
			rack.Close()
			closed++
		}
	}
	if closed != 2 {
		t.Fatalf("expected the bottle on exactly one rack, closed %d of 3", closed)
	}
	sim.RunFor(2 * time.Second)

	ms := alice.Matches()[reqID]
	if len(ms) != 1 || ms[0].Peer != "bob" {
		t.Fatalf("matches after rack loss = %+v, want bob", ms)
	}
	for _, rack := range racks {
		rack.Close()
	}
}
