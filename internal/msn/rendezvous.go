package msn

import (
	"context"
	"fmt"
	"time"

	"sealedbottle/internal/broker"
	"sealedbottle/internal/client"
	"sealedbottle/internal/core"
)

// Rendezvous is the broker surface the friending layer needs — the module's
// canonical context-first Backend. *broker.Rack (in-process), *client.Courier
// (pipelined transport) and *client.Ring (a whole cluster) all satisfy it, so
// a simulator scenario can run against the real subsystem any of those ways.
type Rendezvous = broker.Backend

// pendingRequest tracks one of this node's outstanding requests for
// broker-mode reply fetching.
type pendingRequest struct {
	id      string
	expires time.Time
}

// rendezvousSeenCap bounds the seen-ID window shipped with every sweep query;
// without it a long-lived node's queries would grow (and cost the broker)
// linearly with its lifetime.
const rendezvousSeenCap = 4096

// initRendezvous builds the node's sweeper, wiring the participant's
// evaluation loop to this app's bookkeeping. Called once from NewFriendingApp
// after the participant exists.
func (a *FriendingApp) initRendezvous() error {
	sweeper, err := client.NewSweeper(a.rendezvous, client.SweeperConfig{
		Participant:   a.part,
		Primes:        a.sweepPrimes,
		SeenCap:       rendezvousSeenCap,
		ExcludeOrigin: string(a.id),
		// Never evaluate our own bottles: the broker's origin exclusion
		// already drops them, but a node could share an origin string.
		Skip: func(requestID string) bool {
			_, mine := a.initiators[requestID]
			return mine
		},
		OnResult: func(pkg *core.RequestPackage, res *core.HandleResult) {
			if res.Matched {
				a.peerMatches = append(a.peerMatches, PeerMatch{
					RequestID:  pkg.ID,
					Initiator:  NodeID(pkg.Origin),
					ChannelKey: res.ChannelKey,
					At:         a.tickNow,
				})
			}
		},
	})
	if err != nil {
		return fmt.Errorf("msn: building sweeper for %q: %w", a.id, err)
	}
	a.sweeper = sweeper
	return nil
}

// startRendezvousSearch submits the request bottle to the broker instead of
// flooding it through the ad-hoc network. StartSearch is a synchronous
// simulator-driven call with no caller context, so the submission runs under
// context.Background(); the cancelable path is RendezvousTick.
func (a *FriendingApp) startRendezvousSearch(payload []byte) error {
	if _, err := a.rendezvous.Submit(context.Background(), payload); err != nil {
		return fmt.Errorf("msn: submitting request to rendezvous: %w", err)
	}
	return nil
}

// RendezvousTick performs one sweep-and-fetch cycle against the broker: the
// courier SDK's sweeper screens, evaluates and replies with this node's
// participant machinery, then replies for this node's own outstanding
// requests are drained in one batched round trip. Scenarios typically
// register it with Simulator.Every or AttachRendezvous so cycles happen on
// the simulated clock. Canceling ctx stops the cycle mid-sweep (the sweeper
// queues undelivered replies for the next tick) — the hook that lets a node
// loop shut down without waiting out a slow broker.
func (a *FriendingApp) RendezvousTick(ctx context.Context, now time.Time) error {
	if a.sweeper == nil {
		return fmt.Errorf("msn: node %q has no rendezvous configured", a.id)
	}
	a.tickNow = now
	if _, err := a.sweeper.Tick(ctx); err != nil {
		return fmt.Errorf("msn: sweeping rendezvous: %w", err)
	}
	// Drain replies for this node's outstanding requests, dropping requests
	// whose bottles have expired off the rack — no further replies can arrive
	// for those. A fetch error (bottle reaped early, transport hiccup) is not
	// fatal; the request stays pending until its expiry.
	kept := a.pending[:0]
	for _, pr := range a.pending {
		if !pr.expires.IsZero() && now.After(pr.expires) {
			continue
		}
		kept = append(kept, pr)
	}
	a.pending = kept
	ids := make([]string, len(a.pending))
	for i, pr := range a.pending {
		ids[i] = pr.id
	}
	for i, res := range client.FetchMany(ctx, a.rendezvous, ids) {
		if res.Err != nil {
			continue
		}
		init := a.initiators[ids[i]]
		for _, raw := range res.Replies {
			reply, err := core.UnmarshalReply(raw)
			if err != nil {
				continue
			}
			_, reject, err := init.ProcessReply(reply)
			if err != nil {
				continue
			}
			if reject != core.RejectNone {
				a.rejected[reject]++
			}
		}
	}
	return ctx.Err()
}

// AttachRendezvous registers one periodic hook that ticks every app against
// the broker in deterministic (registration) order; scenarios call it once
// after building their nodes. The context bounds every tick the hook runs —
// cancel it to stop broker traffic while the simulator keeps going.
func AttachRendezvous(ctx context.Context, sim *Simulator, interval time.Duration, apps ...*FriendingApp) error {
	if sim == nil {
		return fmt.Errorf("msn: nil simulator")
	}
	return sim.Every(interval, func(now time.Time) {
		for _, app := range apps {
			if app != nil && app.sweeper != nil {
				_ = app.RendezvousTick(ctx, now)
			}
		}
	})
}
