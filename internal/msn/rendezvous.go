package msn

import (
	"fmt"
	"time"

	"sealedbottle/internal/broker"
	"sealedbottle/internal/core"
)

// Rendezvous is the broker surface the friending layer needs: submit a
// request bottle, sweep for candidate bottles, post a reply, fetch replies.
// Both *broker.Rack (in-process) and *transport.Client (framed protocol over
// a net.Conn) satisfy it, so a simulator scenario can run against the real
// subsystem either way.
type Rendezvous interface {
	Submit(raw []byte) (string, error)
	Sweep(q broker.SweepQuery) (broker.SweepResult, error)
	Reply(requestID string, raw []byte) error
	Fetch(requestID string) ([][]byte, error)
}

// pendingRequest tracks one of this node's outstanding requests for
// broker-mode reply fetching.
type pendingRequest struct {
	id      string
	expires time.Time
}

// rendezvousSeenCap bounds the seen-ID window shipped with every sweep query;
// without it a long-lived node's queries would grow (and cost the broker)
// linearly with its lifetime.
const rendezvousSeenCap = 4096

// startRendezvousSearch submits the request bottle to the broker instead of
// flooding it through the ad-hoc network.
func (a *FriendingApp) startRendezvousSearch(payload []byte) error {
	if _, err := a.rendezvous.Submit(payload); err != nil {
		return fmt.Errorf("msn: submitting request to rendezvous: %w", err)
	}
	return nil
}

// RendezvousTick performs one sweep-and-fetch cycle against the broker: it
// sweeps for fresh bottles with this node's residue sets, evaluates each with
// the full participant machinery, posts any replies back to the rack, and
// drains replies for this node's own outstanding requests. Scenarios
// typically register it with Simulator.Every so cycles happen on the
// simulated clock.
func (a *FriendingApp) RendezvousTick(now time.Time) error {
	if a.rendezvous == nil {
		return fmt.Errorf("msn: node %q has no rendezvous configured", a.id)
	}
	matcher := a.part.Matcher()
	residues := make([]core.ResidueSet, 0, len(a.sweepPrimes))
	for _, p := range a.sweepPrimes {
		residues = append(residues, matcher.ResidueSet(p))
	}
	res, err := a.rendezvous.Sweep(broker.SweepQuery{
		Residues:      residues,
		ExcludeOrigin: string(a.id),
		Seen:          a.sweepSeen,
	})
	if err != nil {
		return fmt.Errorf("msn: sweeping rendezvous: %w", err)
	}
	for _, b := range res.Bottles {
		a.sweepSeen = append(a.sweepSeen, b.ID)
		a.handleRendezvousBottle(now, b)
	}
	if excess := len(a.sweepSeen) - rendezvousSeenCap; excess > 0 {
		a.sweepSeen = append(a.sweepSeen[:0], a.sweepSeen[excess:]...)
	}
	// Drain replies for this node's outstanding requests, dropping requests
	// whose bottles have expired off the rack — no further replies can arrive
	// for those. A fetch error (bottle reaped early, transport hiccup) is not
	// fatal; the request stays pending until its expiry.
	kept := a.pending[:0]
	for _, pr := range a.pending {
		if !pr.expires.IsZero() && now.After(pr.expires) {
			continue
		}
		kept = append(kept, pr)
		raws, err := a.rendezvous.Fetch(pr.id)
		if err != nil {
			continue
		}
		for _, raw := range raws {
			reply, err := core.UnmarshalReply(raw)
			if err != nil {
				continue
			}
			init := a.initiators[pr.id]
			_, reject, err := init.ProcessReply(reply)
			if err != nil {
				continue
			}
			if reject != core.RejectNone {
				a.rejected[reject]++
			}
		}
	}
	a.pending = kept
	return nil
}

// handleRendezvousBottle evaluates one swept bottle exactly as a flooded
// request would be: full participant handling, match recording, and a reply
// posted back to the rack instead of routed over a reverse path.
func (a *FriendingApp) handleRendezvousBottle(now time.Time, b broker.SweptBottle) {
	pkg, err := core.UnmarshalPackage(b.Raw)
	if err != nil {
		return
	}
	if _, mine := a.initiators[pkg.ID]; mine {
		return
	}
	res, err := a.part.HandleRequest(pkg)
	if err != nil {
		return
	}
	if res.Matched {
		a.peerMatches = append(a.peerMatches, PeerMatch{
			RequestID:  pkg.ID,
			Initiator:  NodeID(pkg.Origin),
			ChannelKey: res.ChannelKey,
			At:         now,
		})
	}
	if res.Reply != nil {
		// Reply errors (e.g. the bottle expired between sweep and reply) are
		// the broker-mode analogue of an undeliverable unicast: dropped.
		_ = a.rendezvous.Reply(pkg.ID, res.Reply.Marshal())
	}
}

// AttachRendezvous registers one periodic hook that ticks every app against
// the broker in deterministic (registration) order; scenarios call it once
// after building their nodes.
func AttachRendezvous(sim *Simulator, interval time.Duration, apps ...*FriendingApp) error {
	if sim == nil {
		return fmt.Errorf("msn: nil simulator")
	}
	return sim.Every(interval, func(now time.Time) {
		for _, app := range apps {
			if app != nil && app.rendezvous != nil {
				_ = app.RendezvousTick(now)
			}
		}
	})
}
