package msn

import (
	"testing"
	"time"
)

func TestChurnTimelineShapeAndDeterminism(t *testing.T) {
	model := ChurnModel{Clients: 12, Ticks: 60, Tick: time.Second, Seed: 7}
	a, err := ChurnTimeline(model)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 12 {
		t.Fatalf("got %d client rows, want 12", len(a))
	}
	for i, row := range a {
		if len(row) != 60 {
			t.Fatalf("client %d has %d ticks, want 60", i, len(row))
		}
	}
	b, err := ChurnTimeline(model)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for t2 := range a[i] {
			if a[i][t2] != b[i][t2] {
				t.Fatalf("timeline not deterministic at client %d tick %d", i, t2)
			}
		}
	}
}

func TestChurnTimelineActuallyChurns(t *testing.T) {
	// With a 150m range inside a 420×420 area and 60 mobile seconds, the
	// population must both spend time on each side of the coverage edge and
	// cross it: all-online, all-offline, or transition-free timelines would
	// make the churn scenario vacuous.
	timeline, err := ChurnTimeline(ChurnModel{Clients: 16, Ticks: 60, Tick: time.Second, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	frac := OnlineFraction(timeline)
	if frac <= 0.05 || frac >= 0.95 {
		t.Fatalf("online fraction %.2f is degenerate", frac)
	}
	if n := Transitions(timeline); n < 8 {
		t.Fatalf("only %d online/offline transitions across the population, want ≥8", n)
	}
}

func TestChurnTimelineValidation(t *testing.T) {
	if _, err := ChurnTimeline(ChurnModel{Clients: 0, Ticks: 5}); err == nil {
		t.Fatal("expected an error for zero clients")
	}
	if _, err := ChurnTimeline(ChurnModel{Clients: 5, Ticks: 0}); err == nil {
		t.Fatal("expected an error for zero ticks")
	}
}
