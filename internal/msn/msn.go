// Package msn is a discrete-event simulator for decentralized, multi-hop
// mobile social networks — the substrate the Sealed Bottle protocols run on.
//
// The paper evaluates its protocols over ad-hoc Wi-Fi/Bluetooth networks of
// smartphones; this package provides the equivalent synthetic environment:
// nodes with positions and a radio range, proximity-based connectivity,
// per-hop latency and loss, request flooding with TTL and duplicate
// suppression, reverse-path routing of replies, per-origin relay rate
// limiting (the paper's DoS defence), and random-waypoint mobility. The
// friending application layer (request broadcasting, relaying, replying, and
// secure-channel establishment) is wired on top in friending.go.
package msn

import (
	"errors"
	"fmt"
	"time"
)

// NodeID identifies a node (device) in the network.
type NodeID string

// Position is a planar location in meters.
type Position struct {
	X float64
	Y float64
}

// MessageKind classifies messages at the network layer.
type MessageKind uint8

const (
	// KindRequest is a flooded friending request package.
	KindRequest MessageKind = iota + 1
	// KindReply is a unicast reply routed back toward the request origin.
	KindReply
	// KindData is an application data frame over an established channel.
	KindData
)

// String implements fmt.Stringer.
func (k MessageKind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindReply:
		return "reply"
	case KindData:
		return "data"
	default:
		return fmt.Sprintf("MessageKind(%d)", uint8(k))
	}
}

// Message is a network-layer frame.
type Message struct {
	// Kind selects flooding (request) vs reverse-path unicast (reply/data).
	Kind MessageKind
	// ID de-duplicates flooded messages and keys reverse-path state.
	ID string
	// Correlate references the request a reply or data frame belongs to.
	Correlate string
	// Origin is the node that created the message.
	Origin NodeID
	// Destination is the unicast target; empty for flooded messages.
	Destination NodeID
	// Payload is the opaque application payload (a marshalled request
	// package, a marshalled reply, or a sealed channel frame).
	Payload []byte
	// TTL is the remaining hop budget.
	TTL int
	// Hops counts hops travelled so far.
	Hops int
}

// clone returns a copy safe to mutate during forwarding.
func (m *Message) clone() *Message {
	out := *m
	out.Payload = append([]byte(nil), m.Payload...)
	return &out
}

// Handler is the application layer attached to each node.
type Handler interface {
	// OnMessage processes a message delivered to this node. It reports
	// whether a flooded message should be re-broadcast by this node and
	// returns any new messages to originate (replies, data frames).
	OnMessage(now time.Time, node *Node, msg *Message) (forward bool, outgoing []*Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(now time.Time, node *Node, msg *Message) (bool, []*Message)

// OnMessage implements Handler.
func (f HandlerFunc) OnMessage(now time.Time, node *Node, msg *Message) (bool, []*Message) {
	return f(now, node, msg)
}

// Config parameterizes the simulated network.
type Config struct {
	// Range is the radio range in meters (default 50, the paper's proximity
	// example).
	Range float64
	// Latency is the per-hop transmission latency (default 20ms).
	Latency time.Duration
	// LatencyJitter adds up to this much uniform jitter per hop.
	LatencyJitter time.Duration
	// LossRate is the independent per-link loss probability in [0, 1).
	LossRate float64
	// DefaultTTL bounds flooding depth (default 8 hops).
	DefaultTTL int
	// RelayRateLimit is the minimum interval between relayed requests from
	// the same origin (DoS defence); zero disables relay rate limiting.
	RelayRateLimit time.Duration
	// MobilityInterval is how often mobile nodes advance toward their
	// waypoint; zero disables mobility.
	MobilityInterval time.Duration
	// Area bounds the mobility region (waypoints are drawn inside it).
	Area Position
	// Seed makes the simulation deterministic.
	Seed int64
	// Start is the simulated epoch (defaults to a fixed instant so runs are
	// reproducible).
	Start time.Time
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Range <= 0 {
		c.Range = 50
	}
	if c.Latency <= 0 {
		c.Latency = 20 * time.Millisecond
	}
	if c.DefaultTTL <= 0 {
		c.DefaultTTL = 8
	}
	if c.Area.X <= 0 {
		c.Area.X = 1000
	}
	if c.Area.Y <= 0 {
		c.Area.Y = 1000
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2013, 7, 8, 0, 0, 0, 0, time.UTC)
	}
	return c
}

// Stats aggregates network-level counters.
type Stats struct {
	// Sent counts link-level transmissions attempted.
	Sent int
	// Delivered counts link-level receptions that reached a node.
	Delivered int
	// Lost counts transmissions dropped by the loss model.
	Lost int
	// Duplicates counts flooded frames dropped as already-seen.
	Duplicates int
	// Expired counts frames dropped for exhausted TTL.
	Expired int
	// RateLimited counts relays suppressed by the per-origin rate limit.
	RateLimited int
	// Undeliverable counts unicast frames with no route.
	Undeliverable int
	// DeliveredByKind breaks deliveries down by message kind.
	DeliveredByKind map[MessageKind]int
	// BytesSent totals payload bytes transmitted.
	BytesSent int
}

func newStats() Stats {
	return Stats{DeliveredByKind: make(map[MessageKind]int)}
}

// ErrUnknownNode is returned when addressing a node that was never added.
var ErrUnknownNode = errors.New("msn: unknown node")
