package msn

import (
	"errors"
	"fmt"
	"io"
	"time"

	"sealedbottle/internal/attr"
	"sealedbottle/internal/client"
	"sealedbottle/internal/core"
	"sealedbottle/internal/crypt"
)

// FriendingApp is the application layer that binds the Sealed Bottle
// protocols to a simulated node: it answers incoming requests as a
// participant, relays what should be relayed, routes replies back to
// initiators it knows about, and records established matches on both sides.
type FriendingApp struct {
	id   NodeID
	sim  *Simulator
	part *core.Participant

	initiators map[string]*core.Initiator // request ID -> local initiator state
	// pending lists this node's requests in creation order with their expiry,
	// so broker-mode reply fetching iterates deterministically and stops once
	// a request's bottle has expired off the rack.
	pending []pendingRequest

	// rendezvous, when non-nil, delivers requests and replies through the
	// bottle-rack broker instead of multi-hop flooding.
	rendezvous Rendezvous
	// sweepPrimes lists the remainder primes this node screens against.
	sweepPrimes []uint32
	// sweeper is the courier SDK's sweep-evaluate-reply loop bound to this
	// node's participant; it owns the bounded seen-ID window.
	sweeper *client.Sweeper
	// tickNow is the simulated time of the RendezvousTick in progress, read by
	// the sweeper's OnResult hook when recording peer matches.
	tickNow time.Time

	// PeerMatches records matches this node learned about as a participant
	// (Protocol 1 only: the participant can verify locally).
	peerMatches []PeerMatch
	// rejected counts replies the node's initiators rejected, by reason.
	rejected map[core.RejectReason]int
}

// PeerMatch records a participant-side match (Protocol 1).
type PeerMatch struct {
	// RequestID identifies the request that matched.
	RequestID string
	// Initiator is the request origin.
	Initiator NodeID
	// ChannelKey is the pairwise key derived on the participant side.
	ChannelKey crypt.Key
	// At is the simulated time the match was detected.
	At time.Time
}

// FriendingConfig configures a friending node.
type FriendingConfig struct {
	// Profile is the node's own attribute set.
	Profile *attr.Profile
	// Participant tunes the participant behaviour (protocol, matcher, ϕ).
	Participant core.ParticipantConfig
	// Rand supplies randomness for initiator/participant crypto (nil:
	// crypto/rand).
	Rand io.Reader
	// Rendezvous, when non-nil, switches the node to broker-backed delivery:
	// StartSearch submits the bottle to the rack and RendezvousTick (usually
	// driven via Simulator.Every or AttachRendezvous) sweeps, replies and
	// fetches instead of the flooding path.
	Rendezvous Rendezvous
	// SweepPrimes lists the remainder primes swept in broker mode
	// (nil: core.DefaultPrime only).
	SweepPrimes []uint32
}

// NewFriendingApp creates the application layer for one node and registers it
// with the simulator at the given position.
func NewFriendingApp(sim *Simulator, id NodeID, pos Position, cfg FriendingConfig) (*FriendingApp, *Node, error) {
	if sim == nil {
		return nil, nil, errors.New("msn: nil simulator")
	}
	if cfg.Profile == nil || cfg.Profile.Len() == 0 {
		return nil, nil, errors.New("msn: friending node needs a non-empty profile")
	}
	app := &FriendingApp{
		id:          id,
		sim:         sim,
		initiators:  make(map[string]*core.Initiator),
		rejected:    make(map[core.RejectReason]int),
		rendezvous:  cfg.Rendezvous,
		sweepPrimes: cfg.SweepPrimes,
	}
	if app.rendezvous != nil && len(app.sweepPrimes) == 0 {
		app.sweepPrimes = []uint32{core.DefaultPrime}
	}
	pcfg := cfg.Participant
	pcfg.ID = string(id)
	if pcfg.Rand == nil {
		pcfg.Rand = cfg.Rand
	}
	pcfg.Now = sim.Now
	part, err := core.NewParticipant(cfg.Profile, pcfg)
	if err != nil {
		return nil, nil, fmt.Errorf("msn: building participant for %q: %w", id, err)
	}
	app.part = part
	if app.rendezvous != nil {
		if err := app.initRendezvous(); err != nil {
			return nil, nil, err
		}
	}
	node, err := sim.AddNode(id, pos, app)
	if err != nil {
		return nil, nil, err
	}
	return app, node, nil
}

// Participant exposes the underlying protocol participant (e.g. to bind a
// dynamic location key).
func (a *FriendingApp) Participant() *core.Participant { return a.part }

// SearchOptions tunes an outgoing search.
type SearchOptions struct {
	// Protocol selects Protocol 1, 2 or 3 (zero: Protocol 1).
	Protocol core.Protocol
	// Note is an optional application payload (Protocol 1 only).
	Note []byte
	// Validity bounds the request lifetime.
	Validity time.Duration
	// TTL bounds flooding depth (zero: simulator default).
	TTL int
	// Rand supplies randomness (nil: crypto/rand).
	Rand io.Reader
}

// StartSearch builds a request for the given specification and floods it from
// this node. It returns the request ID used to correlate matches.
func (a *FriendingApp) StartSearch(spec core.RequestSpec, opts SearchOptions) (string, error) {
	init, err := core.NewInitiator(spec, core.InitiatorConfig{
		Protocol: opts.Protocol,
		Origin:   string(a.id),
		Note:     opts.Note,
		Validity: opts.Validity,
		Rand:     opts.Rand,
		Now:      a.sim.Now,
	})
	if err != nil {
		return "", fmt.Errorf("msn: building initiator: %w", err)
	}
	pkg := init.Request()
	payload, err := pkg.Marshal()
	if err != nil {
		return "", fmt.Errorf("msn: marshalling request: %w", err)
	}
	a.initiators[pkg.ID] = init
	if a.rendezvous != nil {
		// pending is only consumed (and pruned) by RendezvousTick; the
		// flooding path routes replies by correlation ID instead.
		a.pending = append(a.pending, pendingRequest{id: pkg.ID, expires: pkg.ExpiresAt})
		if err := a.startRendezvousSearch(payload); err != nil {
			delete(a.initiators, pkg.ID)
			a.pending = a.pending[:len(a.pending)-1]
			return "", err
		}
		return pkg.ID, nil
	}
	msg := &Message{
		Kind:    KindRequest,
		ID:      pkg.ID,
		Origin:  a.id,
		Payload: payload,
		TTL:     opts.TTL,
	}
	if err := a.sim.Originate(a.id, msg); err != nil {
		return "", err
	}
	return pkg.ID, nil
}

// Matches returns the matches confirmed by this node's initiators, keyed by
// request ID.
func (a *FriendingApp) Matches() map[string][]core.Match {
	out := make(map[string][]core.Match, len(a.initiators))
	for id, init := range a.initiators {
		if ms := init.Matches(); len(ms) > 0 {
			out[id] = ms
		}
	}
	return out
}

// Initiator returns the initiator state for a request started by this node.
func (a *FriendingApp) Initiator(requestID string) (*core.Initiator, bool) {
	init, ok := a.initiators[requestID]
	return init, ok
}

// PeerMatches returns the participant-side matches (Protocol 1 only).
func (a *FriendingApp) PeerMatches() []PeerMatch {
	out := make([]PeerMatch, len(a.peerMatches))
	copy(out, a.peerMatches)
	return out
}

// Rejections returns reply rejection counts by reason, across this node's
// initiators.
func (a *FriendingApp) Rejections() map[core.RejectReason]int {
	out := make(map[core.RejectReason]int, len(a.rejected))
	for k, v := range a.rejected {
		out[k] = v
	}
	return out
}

// OnMessage implements Handler: requests are answered/relayed as a
// participant; replies are processed by the local initiator they correlate
// with.
func (a *FriendingApp) OnMessage(now time.Time, node *Node, msg *Message) (bool, []*Message) {
	switch msg.Kind {
	case KindRequest:
		return a.onRequest(now, msg)
	case KindReply:
		return false, a.onReply(msg)
	default:
		return false, nil
	}
}

func (a *FriendingApp) onRequest(now time.Time, msg *Message) (bool, []*Message) {
	pkg, err := core.UnmarshalPackage(msg.Payload)
	if err != nil {
		// Malformed request: do not relay garbage.
		return false, nil
	}
	// Never re-answer our own request; still do not forward it back out
	// (neighbours already received the original broadcast).
	if _, mine := a.initiators[pkg.ID]; mine {
		return false, nil
	}
	res, err := a.part.HandleRequest(pkg)
	if err != nil {
		return false, nil
	}
	if res.Matched {
		a.peerMatches = append(a.peerMatches, PeerMatch{
			RequestID:  pkg.ID,
			Initiator:  NodeID(pkg.Origin),
			ChannelKey: res.ChannelKey,
			At:         now,
		})
	}
	var outgoing []*Message
	if res.Reply != nil {
		outgoing = append(outgoing, &Message{
			Kind:        KindReply,
			ID:          fmt.Sprintf("%s/reply/%s", pkg.ID, a.id),
			Correlate:   pkg.ID,
			Origin:      a.id,
			Destination: NodeID(pkg.Origin),
			Payload:     res.Reply.Marshal(),
		})
	}
	return res.Forward, outgoing
}

func (a *FriendingApp) onReply(msg *Message) []*Message {
	init, ok := a.initiators[msg.Correlate]
	if !ok {
		return nil
	}
	reply, err := core.UnmarshalReply(msg.Payload)
	if err != nil {
		return nil
	}
	_, reject, err := init.ProcessReply(reply)
	if err != nil {
		return nil
	}
	if reject != core.RejectNone {
		a.rejected[reject]++
	}
	return nil
}
