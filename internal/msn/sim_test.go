package msn

import (
	"testing"
	"time"
)

// collector is a Handler that records delivered messages and optionally
// forwards floods.
type collector struct {
	received []*Message
	forward  bool
	reply    func(msg *Message) []*Message
}

func (c *collector) OnMessage(_ time.Time, _ *Node, msg *Message) (bool, []*Message) {
	c.received = append(c.received, msg.clone())
	var out []*Message
	if c.reply != nil {
		out = c.reply(msg)
	}
	return c.forward, out
}

func lineTopology(t *testing.T, sim *Simulator, handlers []*collector, spacing float64) {
	t.Helper()
	for i, h := range handlers {
		id := NodeID(string(rune('a' + i)))
		if _, err := sim.AddNode(id, Position{X: float64(i) * spacing}, h); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Range != 50 || cfg.DefaultTTL != 8 || cfg.Latency <= 0 || cfg.Start.IsZero() {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestAddNodeAndNeighbors(t *testing.T) {
	sim := NewSimulator(Config{Range: 100})
	a := &collector{}
	lineTopology(t, sim, []*collector{a, {}, {}}, 80)
	if _, err := sim.AddNode("a", Position{}, a); err == nil {
		t.Error("duplicate node should fail")
	}
	// a(0) - b(80) - c(160): a and b are neighbours, a and c are not.
	nbs := sim.Neighbors("a")
	if len(nbs) != 1 || nbs[0] != "b" {
		t.Errorf("Neighbors(a) = %v", nbs)
	}
	if got := sim.Neighbors("b"); len(got) != 2 {
		t.Errorf("Neighbors(b) = %v", got)
	}
	if sim.Neighbors("missing") != nil {
		t.Error("unknown node should have no neighbours")
	}
	if len(sim.NodeIDs()) != 3 {
		t.Error("NodeIDs wrong")
	}
	if _, ok := sim.Node("a"); !ok {
		t.Error("Node lookup failed")
	}
}

func TestFloodReachesMultiHop(t *testing.T) {
	// Line of 5 nodes spaced 80m with 100m range: only adjacent nodes hear
	// each other, so reaching the far end requires relaying.
	handlers := make([]*collector, 5)
	for i := range handlers {
		handlers[i] = &collector{forward: true}
	}
	sim := NewSimulator(Config{Range: 100, Latency: time.Millisecond})
	lineTopology(t, sim, handlers, 80)

	err := sim.Originate("a", &Message{Kind: KindRequest, ID: "req1", Payload: []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	sim.Drain()

	for i, h := range handlers[1:] {
		if len(h.received) != 1 {
			t.Errorf("node %d received %d messages, want 1", i+1, len(h.received))
		}
	}
	// Hop counts increase along the line.
	if handlers[4].received[0].Hops < handlers[1].received[0].Hops {
		t.Error("hop count did not increase along the path")
	}
	stats := sim.Stats()
	if stats.Delivered == 0 || stats.Sent == 0 {
		t.Error("stats not recorded")
	}
	if stats.DeliveredByKind[KindRequest] == 0 {
		t.Error("per-kind stats not recorded")
	}
}

func TestFloodRespectsTTL(t *testing.T) {
	handlers := make([]*collector, 6)
	for i := range handlers {
		handlers[i] = &collector{forward: true}
	}
	sim := NewSimulator(Config{Range: 100, Latency: time.Millisecond})
	lineTopology(t, sim, handlers, 80)

	// TTL 2: origin -> b (TTL 2) -> c (TTL 1, not re-broadcast).
	if err := sim.Originate("a", &Message{Kind: KindRequest, ID: "req1", TTL: 2}); err != nil {
		t.Fatal(err)
	}
	sim.Drain()
	if len(handlers[2].received) != 1 {
		t.Errorf("node c should have received the frame, got %d", len(handlers[2].received))
	}
	if len(handlers[3].received) != 0 {
		t.Errorf("node d is beyond TTL, got %d deliveries", len(handlers[3].received))
	}
	if sim.Stats().Expired == 0 {
		t.Error("expired counter should have incremented")
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// Triangle: every node hears every other; each frame must be processed
	// exactly once per node despite multiple copies arriving.
	handlers := []*collector{{forward: true}, {forward: true}, {forward: true}}
	sim := NewSimulator(Config{Range: 500, Latency: time.Millisecond})
	lineTopology(t, sim, handlers, 50)

	if err := sim.Originate("a", &Message{Kind: KindRequest, ID: "req1"}); err != nil {
		t.Fatal(err)
	}
	sim.Drain()
	for i, h := range handlers[1:] {
		if len(h.received) != 1 {
			t.Errorf("node %d processed %d copies, want 1", i+1, len(h.received))
		}
	}
	if sim.Stats().Duplicates == 0 {
		t.Error("duplicate suppression should have fired")
	}
}

func TestReverseRoutingOfReplies(t *testing.T) {
	// Node e replies to a's request; the reply must travel back through the
	// relays via the recorded reverse path.
	var replyPayload = []byte("reply-data")
	handlers := make([]*collector, 5)
	for i := range handlers {
		handlers[i] = &collector{forward: true}
	}
	handlers[4].reply = func(msg *Message) []*Message {
		return []*Message{{
			Kind:        KindReply,
			ID:          "reply1",
			Correlate:   msg.ID,
			Destination: msg.Origin,
			Payload:     replyPayload,
		}}
	}
	sim := NewSimulator(Config{Range: 100, Latency: time.Millisecond})
	lineTopology(t, sim, handlers, 80)

	if err := sim.Originate("a", &Message{Kind: KindRequest, ID: "req1"}); err != nil {
		t.Fatal(err)
	}
	sim.Drain()

	var got *Message
	for _, m := range handlers[0].received {
		if m.Kind == KindReply {
			got = m
		}
	}
	if got == nil {
		t.Fatal("reply never reached the origin")
	}
	if string(got.Payload) != string(replyPayload) {
		t.Error("reply payload corrupted")
	}
}

func TestLossyLinksDropFrames(t *testing.T) {
	handlers := []*collector{{forward: true}, {forward: true}}
	sim := NewSimulator(Config{Range: 100, Latency: time.Millisecond, LossRate: 1.0, Seed: 1})
	lineTopology(t, sim, handlers, 50)
	if err := sim.Originate("a", &Message{Kind: KindRequest, ID: "req1"}); err != nil {
		t.Fatal(err)
	}
	sim.Drain()
	if len(handlers[1].received) != 0 {
		t.Error("frame delivered despite 100% loss")
	}
	if sim.Stats().Lost == 0 {
		t.Error("loss counter not incremented")
	}
}

func TestRelayRateLimit(t *testing.T) {
	handlers := []*collector{{forward: true}, {forward: true}, {forward: true}}
	sim := NewSimulator(Config{Range: 100, Latency: time.Millisecond, RelayRateLimit: time.Minute})
	lineTopology(t, sim, handlers, 80)

	// Two different requests from the same origin in quick succession: the
	// middle node relays only the first one.
	if err := sim.Originate("a", &Message{Kind: KindRequest, ID: "req1"}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Originate("a", &Message{Kind: KindRequest, ID: "req2"}); err != nil {
		t.Fatal(err)
	}
	sim.Drain()
	if got := len(handlers[2].received); got != 1 {
		t.Errorf("far node received %d requests, want 1 (second suppressed by rate limit)", got)
	}
	if sim.Stats().RateLimited == 0 {
		t.Error("rate-limit counter not incremented")
	}
}

func TestUnicastWithoutRouteIsUndeliverable(t *testing.T) {
	sim := NewSimulator(Config{Range: 10, Latency: time.Millisecond})
	a := &collector{}
	b := &collector{}
	if _, err := sim.AddNode("a", Position{}, a); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.AddNode("b", Position{X: 1000}, b); err != nil {
		t.Fatal(err)
	}
	if err := sim.Originate("a", &Message{Kind: KindReply, ID: "r", Correlate: "nothing", Destination: "b"}); err != nil {
		t.Fatal(err)
	}
	sim.Drain()
	if len(b.received) != 0 {
		t.Error("unreachable unicast was delivered")
	}
	if sim.Stats().Undeliverable == 0 {
		t.Error("undeliverable counter not incremented")
	}
	if err := sim.Originate("ghost", &Message{Kind: KindRequest, ID: "x"}); err == nil {
		t.Error("originating from an unknown node should fail")
	}
}

func TestRunForAdvancesClock(t *testing.T) {
	sim := NewSimulator(Config{})
	start := sim.Now()
	sim.RunFor(3 * time.Second)
	if got := sim.Now().Sub(start); got != 3*time.Second {
		t.Errorf("clock advanced %v, want 3s", got)
	}
}

func TestMobilityMovesNodesTowardWaypoints(t *testing.T) {
	sim := NewSimulator(Config{
		Range:            50,
		MobilityInterval: time.Second,
		Area:             Position{X: 200, Y: 200},
		Seed:             7,
	})
	n, err := sim.AddNode("walker", Position{X: 0, Y: 0}, &collector{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RandomWaypoint("walker", 10); err != nil {
		t.Fatal(err)
	}
	if err := sim.RandomWaypoint("ghost", 10); err == nil {
		t.Error("unknown node should fail")
	}
	before := n.Position()
	sim.RunFor(10 * time.Second)
	after := n.Position()
	if distance(before, after) == 0 {
		t.Error("mobile node did not move")
	}
	if after.X < 0 || after.Y < 0 || after.X > 200 || after.Y > 200 {
		t.Errorf("node left the area: %+v", after)
	}
}

func TestPlaceUniformKeepsNodesInArea(t *testing.T) {
	sim := NewSimulator(Config{Area: Position{X: 300, Y: 400}, Seed: 3})
	for i := 0; i < 20; i++ {
		if _, err := sim.AddNode(NodeID(rune('a'+i)), Position{}, &collector{}); err != nil {
			t.Fatal(err)
		}
	}
	sim.PlaceUniform()
	for _, id := range sim.NodeIDs() {
		n, _ := sim.Node(id)
		p := n.Position()
		if p.X < 0 || p.X > 300 || p.Y < 0 || p.Y > 400 {
			t.Errorf("node %s outside area: %+v", id, p)
		}
	}
}

func TestMessageKindString(t *testing.T) {
	if KindRequest.String() != "request" || KindReply.String() != "reply" || KindData.String() != "data" {
		t.Error("kind strings wrong")
	}
	if MessageKind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestNodeSpeedClamp(t *testing.T) {
	n := newNode("x", Position{}, &collector{})
	n.SetSpeed(-5)
	if n.Speed() != 0 {
		t.Error("negative speed should clamp to zero")
	}
	n.SetPosition(Position{X: 7})
	if n.Position().X != 7 {
		t.Error("SetPosition failed")
	}
}
