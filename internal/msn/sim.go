package msn

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Simulator is a deterministic discrete-event simulator of the ad-hoc
// network. It is not safe for concurrent use; drive it from one goroutine.
type Simulator struct {
	cfg   Config
	rng   *rand.Rand
	clock time.Time

	nodes map[NodeID]*Node
	order []NodeID

	events eventQueue
	seq    uint64
	// deliveries counts pending frame-delivery events (msg != nil), so Drain
	// can test for outstanding work in O(1).
	deliveries int

	stats Stats
}

// event is a scheduled occurrence: a frame delivery, a mobility tick (nil msg
// and fn), or a periodic hook registered with Every (non-nil fn).
type event struct {
	at  time.Time
	seq uint64 // tie-breaker for determinism

	// delivery fields (nil msg means this is a mobility tick or hook)
	to   NodeID
	from NodeID
	msg  *Message

	// periodic hook fields
	fn    func(now time.Time)
	every time.Duration
}

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// NewSimulator builds an empty network.
func NewSimulator(cfg Config) *Simulator {
	cfg = cfg.withDefaults()
	s := &Simulator{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		clock: cfg.Start,
		nodes: make(map[NodeID]*Node),
		stats: newStats(),
	}
	if cfg.MobilityInterval > 0 {
		s.schedule(&event{at: s.clock.Add(cfg.MobilityInterval)})
	}
	return s
}

// Now returns the current simulated time.
func (s *Simulator) Now() time.Time { return s.clock }

// Stats returns a copy of the accumulated counters.
func (s *Simulator) Stats() Stats {
	out := s.stats
	out.DeliveredByKind = make(map[MessageKind]int, len(s.stats.DeliveredByKind))
	for k, v := range s.stats.DeliveredByKind {
		out.DeliveredByKind[k] = v
	}
	return out
}

// Config returns the effective configuration.
func (s *Simulator) Config() Config { return s.cfg }

// AddNode registers a node at a position with an application handler.
func (s *Simulator) AddNode(id NodeID, pos Position, handler Handler) (*Node, error) {
	if _, dup := s.nodes[id]; dup {
		return nil, fmt.Errorf("msn: node %q already exists", id)
	}
	n := newNode(id, pos, handler)
	n.waypoint = pos
	s.nodes[id] = n
	s.order = append(s.order, id)
	sort.Slice(s.order, func(i, j int) bool { return s.order[i] < s.order[j] })
	return n, nil
}

// Node returns a node by ID.
func (s *Simulator) Node(id NodeID) (*Node, bool) {
	n, ok := s.nodes[id]
	return n, ok
}

// NodeIDs returns all node IDs in deterministic order.
func (s *Simulator) NodeIDs() []NodeID {
	out := make([]NodeID, len(s.order))
	copy(out, s.order)
	return out
}

// Neighbors returns the nodes within radio range of id, in deterministic order.
func (s *Simulator) Neighbors(id NodeID) []NodeID {
	n, ok := s.nodes[id]
	if !ok {
		return nil
	}
	var out []NodeID
	for _, other := range s.order {
		if other == id {
			continue
		}
		if distance(n.pos, s.nodes[other].pos) <= s.cfg.Range {
			out = append(out, other)
		}
	}
	return out
}

// Originate injects a message created by a node's application layer into the
// network: flooded messages are broadcast to neighbours, unicast messages are
// routed via the reverse path of their correlated request.
func (s *Simulator) Originate(from NodeID, msg *Message) error {
	n, ok := s.nodes[from]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, from)
	}
	if msg.TTL <= 0 {
		msg.TTL = s.cfg.DefaultTTL
	}
	if msg.Origin == "" {
		msg.Origin = from
	}
	if msg.Kind == KindRequest {
		// The originator has, by definition, seen its own request.
		n.seen[msg.ID] = struct{}{}
		s.broadcastFrom(n, msg, "")
		return nil
	}
	s.unicastFrom(n, msg)
	return nil
}

// schedule enqueues an event.
func (s *Simulator) schedule(e *event) {
	s.seq++
	e.seq = s.seq
	if e.msg != nil {
		s.deliveries++
	}
	heap.Push(&s.events, e)
}

// broadcastFrom transmits a flooded frame from node n to every neighbour
// except the one it was received from.
func (s *Simulator) broadcastFrom(n *Node, msg *Message, except NodeID) {
	for _, nbID := range s.Neighbors(n.ID) {
		if nbID == except {
			continue
		}
		s.transmit(n.ID, nbID, msg)
	}
}

// unicastFrom forwards a unicast frame one hop along the reverse path toward
// its destination.
func (s *Simulator) unicastFrom(n *Node, msg *Message) {
	if msg.Destination == "" {
		s.stats.Undeliverable++
		return
	}
	// Direct delivery when the destination is in range.
	if dest, ok := s.nodes[msg.Destination]; ok && distance(n.pos, dest.pos) <= s.cfg.Range {
		s.transmit(n.ID, msg.Destination, msg)
		return
	}
	// Otherwise follow the reverse path recorded while the correlated
	// request flooded through this node.
	if hop, ok := n.reversePath[msg.Correlate]; ok {
		s.transmit(n.ID, hop, msg)
		return
	}
	s.stats.Undeliverable++
}

// transmit schedules a single link-level transmission with latency and loss.
func (s *Simulator) transmit(from, to NodeID, msg *Message) {
	s.stats.Sent++
	s.stats.BytesSent += len(msg.Payload)
	if s.cfg.LossRate > 0 && s.rng.Float64() < s.cfg.LossRate {
		s.stats.Lost++
		return
	}
	delay := s.cfg.Latency
	if s.cfg.LatencyJitter > 0 {
		delay += time.Duration(s.rng.Int63n(int64(s.cfg.LatencyJitter)))
	}
	s.schedule(&event{at: s.clock.Add(delay), to: to, from: from, msg: msg.clone()})
}

// Step processes the next pending event. It reports whether an event was
// processed (false means the queue is empty).
func (s *Simulator) Step() bool {
	if s.events.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	if e.msg != nil {
		s.deliveries--
	}
	if e.at.After(s.clock) {
		s.clock = e.at
	}
	if e.fn != nil {
		e.fn(s.clock)
		if e.every > 0 {
			s.schedule(&event{at: s.clock.Add(e.every), fn: e.fn, every: e.every})
		}
		return true
	}
	if e.msg == nil {
		s.mobilityTick()
		return true
	}
	s.deliver(e)
	return true
}

// Every schedules fn to run on the simulated clock each interval, starting
// one interval from now. Hooks run in registration order when co-scheduled;
// they drive periodic application behaviour such as rendezvous sweeps.
func (s *Simulator) Every(interval time.Duration, fn func(now time.Time)) error {
	if interval <= 0 {
		return fmt.Errorf("msn: Every interval must be positive, got %v", interval)
	}
	if fn == nil {
		return fmt.Errorf("msn: Every requires a non-nil hook")
	}
	s.schedule(&event{at: s.clock.Add(interval), fn: fn, every: interval})
	return nil
}

// Run processes events until the queue drains or the simulated clock passes
// the deadline. It returns the number of events processed.
func (s *Simulator) Run(until time.Time) int {
	processed := 0
	for s.events.Len() > 0 {
		next := s.events[0]
		if next.at.After(until) {
			break
		}
		s.Step()
		processed++
	}
	if s.clock.Before(until) {
		s.clock = until
	}
	return processed
}

// RunFor advances the simulation by a duration.
func (s *Simulator) RunFor(d time.Duration) int {
	return s.Run(s.clock.Add(d))
}

// Drain processes events regardless of time until no frame deliveries remain
// pending. Self-rescheduling periodic events (mobility ticks, Every hooks)
// are processed while deliveries are outstanding but do not keep Drain alive
// on their own — otherwise a simulation with mobility or a periodic hook
// would never drain.
func (s *Simulator) Drain() int {
	processed := 0
	for s.deliveries > 0 && s.Step() {
		processed++
	}
	return processed
}

// deliver hands a frame to the receiving node and handles relaying.
func (s *Simulator) deliver(e *event) {
	node, ok := s.nodes[e.to]
	if !ok {
		s.stats.Undeliverable++
		return
	}
	msg := e.msg
	s.stats.Delivered++
	s.stats.DeliveredByKind[msg.Kind]++

	switch {
	case msg.Kind == KindRequest:
		s.deliverFlood(node, e.from, msg)
	case msg.Destination == node.ID:
		_, outgoing := node.handler.OnMessage(s.clock, node, msg)
		s.sendAll(node, outgoing)
	default:
		// Intermediate hop of a unicast: keep forwarding along the reverse path.
		forwarded := msg.clone()
		forwarded.Hops++
		if forwarded.TTL--; forwarded.TTL <= 0 {
			s.stats.Expired++
			return
		}
		s.unicastFrom(node, forwarded)
	}
}

// deliverFlood handles a flooded request frame at a node: duplicate
// suppression, reverse-path recording, application callback, DoS rate
// limiting and re-broadcast.
func (s *Simulator) deliverFlood(node *Node, from NodeID, msg *Message) {
	if node.HasSeen(msg.ID) {
		s.stats.Duplicates++
		return
	}
	node.seen[msg.ID] = struct{}{}
	if _, ok := node.reversePath[msg.ID]; !ok {
		node.reversePath[msg.ID] = from
	}

	forward, outgoing := node.handler.OnMessage(s.clock, node, msg)
	s.sendAll(node, outgoing)

	if !forward {
		return
	}
	if msg.TTL <= 1 {
		s.stats.Expired++
		return
	}
	// Per-origin relay rate limiting (DoS defence).
	if s.cfg.RelayRateLimit > 0 {
		if last, ok := node.lastRelay[msg.Origin]; ok && s.clock.Sub(last) < s.cfg.RelayRateLimit {
			s.stats.RateLimited++
			return
		}
		node.lastRelay[msg.Origin] = s.clock
	}
	relay := msg.clone()
	relay.TTL--
	relay.Hops++
	s.broadcastFrom(node, relay, from)
}

// sendAll originates the application's outgoing messages from a node.
func (s *Simulator) sendAll(node *Node, outgoing []*Message) {
	for _, out := range outgoing {
		if out == nil {
			continue
		}
		if out.TTL <= 0 {
			out.TTL = s.cfg.DefaultTTL
		}
		if out.Origin == "" {
			out.Origin = node.ID
		}
		if out.Kind == KindRequest {
			node.seen[out.ID] = struct{}{}
			s.broadcastFrom(node, out, "")
			continue
		}
		s.unicastFrom(node, out)
	}
}

// mobilityTick advances every mobile node toward its waypoint and reschedules
// the next tick.
func (s *Simulator) mobilityTick() {
	for _, id := range s.order {
		n := s.nodes[id]
		if n.speed <= 0 {
			continue
		}
		if reached := n.advanceToward(s.cfg.MobilityInterval); reached {
			n.waypoint = Position{
				X: s.rng.Float64() * s.cfg.Area.X,
				Y: s.rng.Float64() * s.cfg.Area.Y,
			}
		}
	}
	if s.cfg.MobilityInterval > 0 {
		s.schedule(&event{at: s.clock.Add(s.cfg.MobilityInterval)})
	}
}

// RandomWaypoint assigns the node a random waypoint and speed, enabling
// random-waypoint mobility for it.
func (s *Simulator) RandomWaypoint(id NodeID, speed float64) error {
	n, ok := s.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	n.SetSpeed(speed)
	n.waypoint = Position{X: s.rng.Float64() * s.cfg.Area.X, Y: s.rng.Float64() * s.cfg.Area.Y}
	return nil
}

// PlaceUniform places every node uniformly at random inside the area; handy
// for building scenarios.
func (s *Simulator) PlaceUniform() {
	for _, id := range s.order {
		s.nodes[id].pos = Position{X: s.rng.Float64() * s.cfg.Area.X, Y: s.rng.Float64() * s.cfg.Area.Y}
	}
}
