package msn

import (
	"fmt"
	"time"
)

// ChurnModel parameterizes a mobility-derived connectivity timeline.
type ChurnModel struct {
	// Clients is the number of mobile clients to simulate.
	Clients int
	// Ticks is the number of connectivity samples per client.
	Ticks int
	// Tick is the simulated time between samples (default 1s).
	Tick time.Duration
	// Area bounds the mobility region (default 420×420 m).
	Area Position
	// Range is the gateway's radio range in meters (default 150).
	Range float64
	// Speed is the clients' random-waypoint speed in m/s (default 30).
	Speed float64
	// Seed makes the timeline deterministic.
	Seed int64
}

func (m ChurnModel) withDefaults() ChurnModel {
	if m.Tick <= 0 {
		m.Tick = time.Second
	}
	if m.Area.X <= 0 {
		m.Area.X = 420
	}
	if m.Area.Y <= 0 {
		m.Area.Y = 420
	}
	if m.Range <= 0 {
		m.Range = 150
	}
	if m.Speed <= 0 {
		m.Speed = 30
	}
	return m
}

// ChurnTimeline derives per-client connectivity windows from random-waypoint
// mobility: clients wander the area while a stationary gateway (the bottle
// rack's access point) sits at its center, and a client is online exactly
// while it is within the gateway's radio range. The result is indexed
// [client][tick]; it is deterministic for a given model, so cluster scenarios
// built on it replay identically.
//
// This is the connect/disconnect model of the paper's mobile setting: a
// phone's reachability toggles as its owner walks through and out of hotspot
// coverage, rather than by a memoryless coin flip.
func ChurnTimeline(model ChurnModel) ([][]bool, error) {
	model = model.withDefaults()
	if model.Clients <= 0 || model.Ticks <= 0 {
		return nil, fmt.Errorf("msn: churn timeline needs clients and ticks, got %d×%d", model.Clients, model.Ticks)
	}
	sim := NewSimulator(Config{
		Range:            model.Range,
		Area:             model.Area,
		MobilityInterval: model.Tick,
		Seed:             model.Seed,
	})
	idle := HandlerFunc(func(time.Time, *Node, *Message) (bool, []*Message) { return false, nil })
	const gatewayID = NodeID("gateway")
	center := Position{X: model.Area.X / 2, Y: model.Area.Y / 2}
	gw, err := sim.AddNode(gatewayID, center, idle)
	if err != nil {
		return nil, err
	}
	ids := make([]NodeID, model.Clients)
	for i := range ids {
		ids[i] = NodeID(fmt.Sprintf("client-%04d", i))
		if _, err := sim.AddNode(ids[i], center, idle); err != nil {
			return nil, err
		}
	}
	// Scatter everyone, pin the gateway back to the center, then enable
	// random-waypoint mobility for the clients only.
	sim.PlaceUniform()
	gw.SetPosition(center)
	for _, id := range ids {
		if err := sim.RandomWaypoint(id, model.Speed); err != nil {
			return nil, err
		}
	}
	timeline := make([][]bool, model.Clients)
	for i := range timeline {
		timeline[i] = make([]bool, model.Ticks)
	}
	index := make(map[NodeID]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}
	for t := 0; t < model.Ticks; t++ {
		sim.RunFor(model.Tick)
		for _, id := range sim.Neighbors(gatewayID) {
			if i, ok := index[id]; ok {
				timeline[i][t] = true
			}
		}
	}
	return timeline, nil
}

// OnlineFraction returns the fraction of (client, tick) samples that are
// online in a timeline — the duty cycle the mobility model produced.
func OnlineFraction(timeline [][]bool) float64 {
	total, online := 0, 0
	for _, row := range timeline {
		for _, up := range row {
			total++
			if up {
				online++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(online) / float64(total)
}

// Transitions counts online↔offline edges across a timeline — how much churn
// the mobility model produced, as opposed to clients that never move in or
// out of coverage.
func Transitions(timeline [][]bool) int {
	n := 0
	for _, row := range timeline {
		for t := 1; t < len(row); t++ {
			if row[t] != row[t-1] {
				n++
			}
		}
	}
	return n
}
