package adversary

import (
	"math/rand"
	"testing"
	"time"

	"sealedbottle/internal/attr"
	"sealedbottle/internal/core"
)

// detRand is a deterministic randomness source for reproducible tests.
type detRand struct{ rng *rand.Rand }

func newDetRand(seed int64) *detRand          { return &detRand{rng: rand.New(rand.NewSource(seed))} }
func (d *detRand) Read(p []byte) (int, error) { return d.rng.Read(p) }
func fixedClock(t time.Time) func() time.Time { return func() time.Time { return t } }

var testEpoch = time.Date(2013, 7, 8, 12, 0, 0, 0, time.UTC)

func tagAttrs(values ...string) []attr.Attribute {
	out := make([]attr.Attribute, len(values))
	for i, v := range values {
		out[i] = attr.MustNew("tag", v)
	}
	return out
}

// smallUniverse is the attacker's dictionary: all attributes that exist in
// this toy social network (the paper's "worst case" of a small dictionary).
func smallUniverse() []attr.Attribute {
	values := []string{
		"male", "female", "columbia", "mit", "basketball", "chess", "golf",
		"tennis", "cooking", "painting", "engineer", "doctor",
	}
	return tagAttrs(values...)
}

func buildInitiator(t *testing.T, proto core.Protocol) *core.Initiator {
	t.Helper()
	spec := core.RequestSpec{
		Necessary:   tagAttrs("male", "columbia"),
		Optional:    tagAttrs("basketball", "chess", "golf"),
		MinOptional: 2,
	}
	init, err := core.NewInitiator(spec, core.InitiatorConfig{
		Protocol: proto,
		Origin:   "alice",
		Rand:     newDetRand(1),
		Now:      fixedClock(testEpoch),
	})
	if err != nil {
		t.Fatal(err)
	}
	return init
}

func TestLevelString(t *testing.T) {
	if PPL0.String() != "PPL0" || PPL3.String() != "PPL3" {
		t.Error("level strings wrong")
	}
	if Level(9).String() == "" {
		t.Error("unknown level should render")
	}
}

func TestDictionaryGuessSpace(t *testing.T) {
	dict := NewDictionary(smallUniverse()...)
	if dict.Size() != 12 {
		t.Fatalf("dictionary size = %d", dict.Size())
	}
	small := dict.GuessSpace(11, 6)
	if small < 1 {
		t.Error("guess space should be at least 1")
	}
	// A Tencent-Weibo-scale dictionary (m ≈ 2^20) makes brute force infeasible
	// (the paper quotes ≈ 2^100 guesses for p=11, mt=6).
	big := NewDictionary(tagAttrs("placeholder")...)
	_ = big
	huge := (&Dictionary{attrs: make([]attr.Attribute, 1<<20)}).GuessSpace(11, 6)
	if huge < 1e28 {
		t.Errorf("large-dictionary guess space = %g, want ≥ 1e28", huge)
	}
	if len(dict.Attributes()) != dict.Size() {
		t.Error("Attributes() size mismatch")
	}
}

func TestDictionaryProfilingBreaksProtocol1ButNotProtocol2(t *testing.T) {
	dict := NewDictionary(smallUniverse()...)
	attacker, err := NewDictionaryAttacker(dict, 1<<16)
	if err != nil {
		t.Fatal(err)
	}

	// Protocol 1: confirmation information lets the attacker verify guesses,
	// so with a small dictionary the request profile is fully recovered
	// (Table II entry (A_I, v'_P) = PPL0).
	init1 := buildInitiator(t, core.Protocol1)
	res1, err := attacker.RecoverRequest(init1.Request())
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Verified {
		t.Fatal("small-dictionary attack on Protocol 1 should succeed")
	}
	recovered := attr.NewProfile(res1.Attributes...)
	for _, a := range tagAttrs("male", "columbia") {
		if !recovered.Contains(a) {
			t.Errorf("necessary attribute %s not recovered", a)
		}
	}
	if got := res1.Leak(init1.Request().AttributeCount()); got != PPL0 && got != PPL1 {
		t.Errorf("Protocol 1 leak = %v, want PPL0/PPL1", got)
	}

	// Protocol 2: no confirmation — the attacker can enumerate candidate keys
	// but can never verify any of them (Table II entry (A_I, v'_P) = PPL3).
	init2 := buildInitiator(t, core.Protocol2)
	res2, err := attacker.RecoverRequest(init2.Request())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Verified || len(res2.Attributes) != 0 {
		t.Error("dictionary attack on Protocol 2 must not verify anything")
	}
	if res2.Leak(init2.Request().AttributeCount()) != PPL3 {
		t.Errorf("Protocol 2 leak = %v, want PPL3", res2.Leak(init2.Request().AttributeCount()))
	}
}

func TestDictionaryAttackerWithoutTheRightEntriesFails(t *testing.T) {
	// A dictionary missing the necessary attributes cannot recover the
	// request even under Protocol 1.
	dict := NewDictionary(tagAttrs("cooking", "painting", "surfing", "running")...)
	attacker, err := NewDictionaryAttacker(dict, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	init := buildInitiator(t, core.Protocol1)
	res, err := attacker.RecoverRequest(init.Request())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified {
		t.Error("attack should fail without the request attributes in the dictionary")
	}
}

func TestNewDictionaryAttackerValidation(t *testing.T) {
	if _, err := NewDictionaryAttacker(nil, 10); err == nil {
		t.Error("nil dictionary should fail")
	}
	if _, err := NewDictionaryAttacker(NewDictionary(), 10); err == nil {
		t.Error("empty dictionary should fail")
	}
}

func TestCheaterCannotFoolInitiator(t *testing.T) {
	for _, proto := range []core.Protocol{core.Protocol1, core.Protocol2} {
		t.Run(proto.String(), func(t *testing.T) {
			init := buildInitiator(t, proto)
			cheater := NewCheater("mallory", 8, newDetRand(3), fixedClock(testEpoch.Add(time.Second)))
			reply, err := cheater.ForgeReply(init.Request())
			if err != nil {
				t.Fatal(err)
			}
			m, reject, err := init.ProcessReply(reply)
			if err != nil {
				t.Fatal(err)
			}
			if m != nil || reject == core.RejectNone {
				t.Errorf("forged reply accepted (reject=%v)", reject)
			}
		})
	}
}

func TestCheaterWithHugeAckSetTripsCardinalityThreshold(t *testing.T) {
	init := buildInitiator(t, core.Protocol2)
	cheater := NewCheater("mallory", core.DefaultMaxReplyAcks+10, newDetRand(4), fixedClock(testEpoch.Add(time.Second)))
	reply, err := cheater.ForgeReply(init.Request())
	if err != nil {
		t.Fatal(err)
	}
	_, reject, err := init.ProcessReply(reply)
	if err != nil {
		t.Fatal(err)
	}
	if reject != core.RejectTooManyAcks {
		t.Errorf("oversized forged reply rejected with %v, want cardinality threshold", reject)
	}
}

func TestEavesdropperSeesNoAttributeMaterial(t *testing.T) {
	spec := core.RequestSpec{
		Necessary:   tagAttrs("male", "columbia"),
		Optional:    tagAttrs("basketball", "chess", "golf"),
		MinOptional: 2,
	}
	for _, proto := range []core.Protocol{core.Protocol1, core.Protocol2} {
		init, err := core.NewInitiator(spec, core.InitiatorConfig{
			Protocol: proto, Origin: "alice", Rand: newDetRand(5), Now: fixedClock(testEpoch),
		})
		if err != nil {
			t.Fatal(err)
		}
		// Capture a matching user's reply too.
		participant, err := core.NewParticipant(
			attr.NewProfile(tagAttrs("male", "columbia", "basketball", "chess")...),
			core.ParticipantConfig{
				ID: "bob", Matcher: core.MatcherConfig{AllowCollisionSkip: true},
				Rand: newDetRand(6), Now: fixedClock(testEpoch.Add(time.Second)),
			})
		if err != nil {
			t.Fatal(err)
		}
		res, err := participant.HandleRequest(init.Request())
		if err != nil {
			t.Fatal(err)
		}
		var replies []*core.Reply
		if res.Reply != nil {
			replies = append(replies, res.Reply)
		}
		allAttrs := tagAttrs("male", "columbia", "basketball", "chess", "golf")
		exposure, err := Eavesdrop(init.Request(), replies, allAttrs, init.ProfileKey())
		if err != nil {
			t.Fatal(err)
		}
		if exposure.AttributeHashLeaks != 0 {
			t.Errorf("%v: %d attribute hashes visible on the wire", proto, exposure.AttributeHashLeaks)
		}
		if exposure.PlaintextLeaks != 0 {
			t.Errorf("%v: %d plaintext attributes visible on the wire", proto, exposure.PlaintextLeaks)
		}
		if exposure.ProfileKeyLeaks != 0 {
			t.Errorf("%v: profile key visible on the wire", proto)
		}
		if exposure.WireBytes == 0 {
			t.Error("exposure should count wire bytes")
		}
	}
}

func TestMITMCannotJoinChannel(t *testing.T) {
	for _, proto := range []core.Protocol{core.Protocol1, core.Protocol2} {
		t.Run(proto.String(), func(t *testing.T) {
			init := buildInitiator(t, proto)
			interceptor := attr.NewProfile(tagAttrs("unrelated", "attacker", "profile")...)
			out, err := ManInTheMiddle(init, interceptor, newDetRand(7))
			if err != nil {
				t.Fatal(err)
			}
			if out.LearnedX {
				t.Error("MITM learned the session key without matching attributes")
			}
			if out.HijackedChannel {
				t.Error("MITM got the initiator to accept a forged channel")
			}
		})
	}
}

func TestMITMWithMatchingProfileIsJustAMatch(t *testing.T) {
	// Sanity check of the attack harness: an "interceptor" that actually owns
	// the matching attributes is simply a legitimate matching user and does
	// recover x. The defence is the attribute ownership itself.
	init := buildInitiator(t, core.Protocol1)
	matching := attr.NewProfile(tagAttrs("male", "columbia", "basketball", "chess")...)
	out, err := ManInTheMiddle(init, matching, newDetRand(8))
	if err != nil {
		t.Fatal(err)
	}
	if !out.LearnedX {
		t.Error("a matching user should recover x")
	}
	if out.HijackedChannel {
		t.Error("even a matching user cannot make the initiator accept a random-key ack")
	}
}

func TestDoSFloodRateLimitReducesTraffic(t *testing.T) {
	report, err := DoSFlood(5, 6, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if report.TransmissionsWithoutLimit <= report.TransmissionsWithLimit {
		t.Errorf("rate limit did not reduce transmissions: %d vs %d",
			report.TransmissionsWithoutLimit, report.TransmissionsWithLimit)
	}
	if report.SuppressedRelays == 0 {
		t.Error("rate limit should have suppressed some relays")
	}
	if report.ReductionFactor() <= 1 {
		t.Errorf("reduction factor = %v", report.ReductionFactor())
	}
	if _, err := DoSFlood(0, 5, time.Minute); err == nil {
		t.Error("zero requests should fail")
	}
}

func TestRecoveryLeakLevels(t *testing.T) {
	tests := []struct {
		name string
		res  RecoveryResult
		size int
		want Level
	}{
		{"nothing", RecoveryResult{}, 5, PPL3},
		{"unverified", RecoveryResult{Attributes: tagAttrs("a")}, 5, PPL3},
		{"partial", RecoveryResult{Verified: true, Attributes: tagAttrs("a", "b")}, 5, PPL1},
		{"full", RecoveryResult{Verified: true, Attributes: tagAttrs("a", "b", "c", "d", "e")}, 5, PPL0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.res.Leak(tt.size); got != tt.want {
				t.Errorf("Leak = %v, want %v", got, tt.want)
			}
		})
	}
}
