// Package adversary implements the attacks of the paper's adversary model
// (Section II-B) against the Sealed Bottle protocols, so the privacy claims
// of Tables I and II can be checked empirically rather than merely asserted:
//
//   - dictionary profiling — an attacker who obtained an attribute dictionary
//     from another source tries to reconstruct the request profile from an
//     eavesdropped request package;
//   - cheating — a participant who never recovered the profile key tries to
//     pretend it matched;
//   - eavesdropping — a passive observer inspects everything on the wire for
//     attribute material;
//   - man-in-the-middle — an active relay tries to insert itself into the
//     secure channel established between the initiator and a matching user;
//   - denial of service — a flooder spams requests through the ad-hoc network
//     to exhaust relays.
package adversary

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"time"

	"sealedbottle/internal/attr"
	"sealedbottle/internal/core"
	"sealedbottle/internal/crypt"
)

// Level is a privacy protection level (Definition 3): PPL0 exposes the whole
// profile, PPL3 exposes nothing.
type Level int

// Privacy protection levels.
const (
	PPL0 Level = iota // the adversary learns the profile
	PPL1              // the adversary learns the intersection with its own set
	PPL2              // the adversary learns the necessary attributes + threshold fact
	PPL3              // the adversary learns nothing
)

// String implements fmt.Stringer.
func (l Level) String() string {
	if l < PPL0 || l > PPL3 {
		return fmt.Sprintf("Level(%d)", int(l))
	}
	return fmt.Sprintf("PPL%d", int(l))
}

// Dictionary is the attacker's external knowledge of the attribute universe.
type Dictionary struct {
	attrs []attr.Attribute
}

// NewDictionary builds a dictionary from candidate attributes.
func NewDictionary(attrs ...attr.Attribute) *Dictionary {
	return &Dictionary{attrs: append([]attr.Attribute(nil), attrs...)}
}

// Size returns the number of dictionary entries.
func (d *Dictionary) Size() int { return len(d.attrs) }

// Attributes returns a copy of the entries.
func (d *Dictionary) Attributes() []attr.Attribute {
	return append([]attr.Attribute(nil), d.attrs...)
}

// GuessSpace returns (m/p)^mt, the expected number of remainder-consistent
// guesses a brute-force attacker must test (Section IV-A1).
func (d *Dictionary) GuessSpace(prime uint32, requestAttributes int) float64 {
	perPosition := float64(d.Size()) / float64(prime)
	if perPosition < 1 {
		perPosition = 1
	}
	space := 1.0
	for i := 0; i < requestAttributes; i++ {
		space *= perPosition
	}
	return space
}

// RecoveryResult is the outcome of a dictionary-profiling attempt against a
// request package.
type RecoveryResult struct {
	// Verified is true when the attacker could confirm a recovery (only
	// possible when the request carries confirmation information, i.e.
	// Protocol 1).
	Verified bool
	// Attributes are the request attributes recovered from the dictionary
	// (empty unless Verified).
	Attributes []attr.Attribute
	// CandidateKeys is how many remainder-consistent candidate keys the
	// attacker had to consider.
	CandidateKeys int
	// Work approximates the attack cost (candidate vectors enumerated).
	Work int
}

// Leak returns the PPL corresponding to what was recovered about a request
// profile of the given size.
func (r *RecoveryResult) Leak(requestSize int) Level {
	if !r.Verified || len(r.Attributes) == 0 {
		return PPL3
	}
	if len(r.Attributes) >= requestSize {
		return PPL0
	}
	return PPL1
}

// DictionaryAttacker mounts dictionary profiling against request packages:
// it behaves exactly like a participant whose "profile" is the entire
// dictionary, which is the strongest form of the attack.
type DictionaryAttacker struct {
	dict    *Dictionary
	matcher *core.Matcher
}

// NewDictionaryAttacker builds the attacker. enumerationCap bounds the work
// the attacker is willing to spend (mirrors the response-time window the
// initiator enforces).
func NewDictionaryAttacker(dict *Dictionary, enumerationCap int) (*DictionaryAttacker, error) {
	if dict == nil || dict.Size() == 0 {
		return nil, errors.New("adversary: empty dictionary")
	}
	matcher, err := core.NewMatcher(attr.NewProfile(dict.attrs...), core.MatcherConfig{
		MaxCandidateVectors: enumerationCap,
		AllowCollisionSkip:  true,
	})
	if err != nil {
		return nil, err
	}
	return &DictionaryAttacker{dict: dict, matcher: matcher}, nil
}

// RecoverRequest attempts to reconstruct the request profile from an
// eavesdropped package. Against a verifiable (Protocol 1) request with a
// small dictionary the attack succeeds; against an opaque (Protocol 2/3)
// request the attacker cannot confirm any guess and learns nothing.
func (a *DictionaryAttacker) RecoverRequest(pkg *core.RequestPackage) (*RecoveryResult, error) {
	vectors, diag, err := a.matcher.CandidateVectors(pkg)
	if err != nil {
		if errors.Is(err, core.ErrTooManyCandidates) {
			// The attacker ran out of budget before confirming anything.
			return &RecoveryResult{Work: diagnosticsWork(diag)}, nil
		}
		return nil, err
	}
	result := &RecoveryResult{Work: diagnosticsWork(diag)}
	seen := make(map[crypt.Key]struct{})
	dictProfile := a.matcher.Profile()
	dictAttrs := dictProfile.Attributes()
	for _, cv := range vectors {
		key, err := cv.Digests.Key()
		if err != nil {
			continue
		}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		if pkg.Mode != core.SealModeVerifiable {
			continue
		}
		if _, err := crypt.OpenVerifiable(key, pkg.Sealed); err != nil {
			continue
		}
		// Confirmed: map the assignment back to dictionary attributes. The
		// positions recovered via the hint matrix have no dictionary
		// preimage, so only positions matched to dictionary entries count.
		result.Verified = true
		for _, idx := range cv.OwnIndices {
			if idx >= 0 && idx < len(dictAttrs) {
				result.Attributes = append(result.Attributes, dictAttrs[idx])
			}
		}
		break
	}
	result.CandidateKeys = len(seen)
	return result, nil
}

func diagnosticsWork(diag *core.Diagnostics) int {
	if diag == nil {
		return 0
	}
	return diag.VectorsEnumerated + diag.HintSystemsSolved
}

// Cheater is a participant that never recovered the profile key but tries to
// convince the initiator it matched by forging acknowledgements with guessed
// keys (Section IV-A3, verifiability).
type Cheater struct {
	ID   string
	rng  io.Reader
	now  func() time.Time
	acks int
}

// NewCheater builds a cheater that will forge the given number of
// acknowledgements per reply (more acknowledgements raise its chance of a
// lucky guess but trip the initiator's cardinality threshold).
func NewCheater(id string, acks int, rng io.Reader, now func() time.Time) *Cheater {
	if acks <= 0 {
		acks = 1
	}
	if rng == nil {
		rng = crypt.DefaultRand()
	}
	if now == nil {
		now = time.Now
	}
	return &Cheater{ID: id, rng: rng, now: now, acks: acks}
}

// ForgeReply fabricates a reply to the request without knowing x: every
// acknowledgement is sealed under a random guess for x.
func (c *Cheater) ForgeReply(pkg *core.RequestPackage) (*core.Reply, error) {
	acks := make([][]byte, 0, c.acks)
	for i := 0; i < c.acks; i++ {
		guess, err := crypt.NewSessionKey(c.rng)
		if err != nil {
			return nil, err
		}
		y, err := crypt.NewSessionKey(c.rng)
		if err != nil {
			return nil, err
		}
		payload := append([]byte("SBACK1"), y[:]...)
		payload = append(payload, 0)
		sealed, err := crypt.SealVerifiable(c.rng, guess, payload)
		if err != nil {
			return nil, err
		}
		acks = append(acks, sealed)
	}
	return &core.Reply{RequestID: pkg.ID, From: c.ID, SentAt: c.now().UTC(), Acks: acks}, nil
}

// Exposure summarizes what a passive eavesdropper can see on the wire for a
// single request/reply exchange.
type Exposure struct {
	// WireBytes is the total ciphertext volume observed.
	WireBytes int
	// AttributeHashLeaks counts occurrences of any request attribute's
	// SHA-256 hash appearing verbatim in the observed bytes (must be zero —
	// the mechanism never transmits attribute hashes).
	AttributeHashLeaks int
	// PlaintextLeaks counts occurrences of any attribute's canonical text
	// appearing verbatim in the observed bytes (must be zero).
	PlaintextLeaks int
	// ProfileKeyLeaks counts occurrences of the request profile key in the
	// observed bytes (must be zero).
	ProfileKeyLeaks int
}

// Eavesdrop inspects everything transmitted for a request (its wire encoding
// plus any replies) and checks whether any attribute hash, canonical
// attribute string, or the profile key appears verbatim.
func Eavesdrop(pkg *core.RequestPackage, replies []*core.Reply, requestAttrs []attr.Attribute, profileKey crypt.Key) (*Exposure, error) {
	wire, err := pkg.Marshal()
	if err != nil {
		return nil, err
	}
	var observed []byte
	observed = append(observed, wire...)
	for _, r := range replies {
		observed = append(observed, r.Marshal()...)
	}
	exp := &Exposure{WireBytes: len(observed)}
	for _, a := range requestAttrs {
		h := crypt.HashAttribute(a.Canonical())
		if bytes.Contains(observed, h[:]) {
			exp.AttributeHashLeaks++
		}
		if bytes.Contains(observed, []byte(a.Canonical())) {
			exp.PlaintextLeaks++
		}
	}
	if !profileKey.IsZero() && bytes.Contains(observed, profileKey[:]) {
		exp.ProfileKeyLeaks++
	}
	return exp, nil
}

// MITMOutcome reports what an active man in the middle achieved.
type MITMOutcome struct {
	// LearnedX is true if the interceptor recovered the initiator's session
	// key (it never should without the matching attributes).
	LearnedX bool
	// HijackedChannel is true if the interceptor got the initiator to accept
	// a channel key the interceptor knows.
	HijackedChannel bool
	// Work is the enumeration work the interceptor performed.
	Work int
}

// ManInTheMiddle plays an active interceptor between the initiator and a
// matching user: it sees the request, may forge or modify replies, and wins
// only if it ends up sharing a channel key with the initiator. Without the
// matching attributes it can neither decrypt x nor produce an acknowledgement
// the initiator accepts, so the attack must fail.
func ManInTheMiddle(init *core.Initiator, interceptorProfile *attr.Profile, rng io.Reader) (*MITMOutcome, error) {
	if rng == nil {
		rng = crypt.DefaultRand()
	}
	pkg := init.Request()
	out := &MITMOutcome{}

	matcher, err := core.NewMatcher(interceptorProfile, core.MatcherConfig{AllowCollisionSkip: true})
	if err != nil {
		return nil, err
	}
	switch pkg.Mode {
	case core.SealModeVerifiable:
		res, diag, err := matcher.TryUnseal(pkg)
		if err != nil {
			return nil, err
		}
		out.Work = diagnosticsWork(diag)
		if res.Matched {
			out.LearnedX = res.X.Equal(init.GroupKey())
		}
	case core.SealModeOpaque:
		xs, diag, err := matcher.CandidateSessionKeys(pkg)
		if err != nil {
			return nil, err
		}
		out.Work = diagnosticsWork(diag)
		for _, x := range xs {
			if x.Equal(init.GroupKey()) {
				out.LearnedX = true
			}
		}
	}

	// Regardless of what it learned, the interceptor now tries to get the
	// initiator to accept a reply whose y it knows, using a guessed x.
	cheater := NewCheater("mitm", 4, rng, nil)
	forged, err := cheater.ForgeReply(pkg)
	if err != nil {
		return nil, err
	}
	if m, reject, err := init.ProcessReply(forged); err == nil && reject == core.RejectNone && m != nil {
		out.HijackedChannel = true
	}
	return out, nil
}
