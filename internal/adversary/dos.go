package adversary

import (
	"fmt"
	"time"

	"sealedbottle/internal/attr"
	"sealedbottle/internal/core"
	"sealedbottle/internal/msn"
)

// DoSReport compares how a flooding attacker propagates through the ad-hoc
// network with and without the per-origin relay rate limit the paper
// prescribes.
type DoSReport struct {
	// RequestsInjected is how many requests the flooder originated.
	RequestsInjected int
	// TransmissionsWithoutLimit counts link transmissions when relays do not
	// rate-limit.
	TransmissionsWithoutLimit int
	// TransmissionsWithLimit counts link transmissions when relays enforce
	// the per-origin rate limit.
	TransmissionsWithLimit int
	// SuppressedRelays counts relays suppressed by the rate limit.
	SuppressedRelays int
}

// ReductionFactor returns how many times fewer transmissions the rate limit
// caused.
func (r DoSReport) ReductionFactor() float64 {
	if r.TransmissionsWithLimit == 0 {
		return float64(r.TransmissionsWithoutLimit)
	}
	return float64(r.TransmissionsWithoutLimit) / float64(r.TransmissionsWithLimit)
}

// DoSFlood simulates a flooder injecting `requests` back-to-back friending
// requests into a line of `relays` relay nodes, once without and once with
// the relay rate limit, and reports the transmission counts.
func DoSFlood(requests, relays int, rateLimit time.Duration) (*DoSReport, error) {
	if requests <= 0 || relays <= 0 {
		return nil, fmt.Errorf("adversary: requests and relays must be positive")
	}
	report := &DoSReport{RequestsInjected: requests}

	run := func(limit time.Duration) (msn.Stats, error) {
		sim := msn.NewSimulator(msn.Config{
			Range:          100,
			Latency:        time.Millisecond,
			RelayRateLimit: limit,
			Seed:           1,
		})
		flooderProfile := attr.NewProfile(attr.MustNew("tag", "flooder"))
		flooder, _, err := msn.NewFriendingApp(sim, "flooder", msn.Position{X: 0}, msn.FriendingConfig{Profile: flooderProfile})
		if err != nil {
			return msn.Stats{}, err
		}
		for i := 0; i < relays; i++ {
			id := msn.NodeID(fmt.Sprintf("relay%02d", i))
			profile := attr.NewProfile(attr.MustNew("tag", fmt.Sprintf("relayinterest%c", 'a'+i%26)))
			if _, _, err := msn.NewFriendingApp(sim, id, msn.Position{X: float64((i + 1) * 80)}, msn.FriendingConfig{Profile: profile}); err != nil {
				return msn.Stats{}, err
			}
		}
		spec := core.PerfectMatch(attr.MustNew("tag", "victimattribute"), attr.MustNew("tag", "nonexistent"))
		for i := 0; i < requests; i++ {
			if _, err := flooder.StartSearch(spec, msn.SearchOptions{Protocol: core.Protocol1}); err != nil {
				return msn.Stats{}, err
			}
		}
		sim.Drain()
		return sim.Stats(), nil
	}

	noLimit, err := run(0)
	if err != nil {
		return nil, err
	}
	withLimit, err := run(rateLimit)
	if err != nil {
		return nil, err
	}
	report.TransmissionsWithoutLimit = noLimit.Sent
	report.TransmissionsWithLimit = withLimit.Sent
	report.SuppressedRelays = withLimit.RateLimited
	return report, nil
}
