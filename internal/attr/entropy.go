package attr

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// This file implements Definitions 4-6 of the paper: attribute entropy,
// profile entropy and the ϕ-entropy-privacy budget used by Protocol 3,
// together with the two suggested policies for choosing ϕ (k-anonymity based
// and sensitive-attribute based).

// ValueDistribution describes the empirical distribution of values taken by a
// single attribute category across the user population, e.g. the distribution
// of "interest" values. Probabilities need not be normalized; Entropy
// normalizes internally.
type ValueDistribution struct {
	// Header is the attribute category the distribution describes.
	Header string
	// Counts maps a normalized value to its number of occurrences (or any
	// non-negative weight proportional to its probability).
	Counts map[string]float64
}

// Entropy returns the Shannon entropy S(a) = -Σ P(a=x_j) log2 P(a=x_j) of the
// attribute category, in bits (Definition 4).
func (d ValueDistribution) Entropy() float64 {
	var total float64
	for _, c := range d.Counts {
		if c > 0 {
			total += c
		}
	}
	if total == 0 {
		return 0
	}
	var s float64
	for _, c := range d.Counts {
		if c <= 0 {
			continue
		}
		p := c / total
		s -= p * math.Log2(p)
	}
	return s
}

// ValueSurprisal returns -log2 P(a = value), the information content of one
// specific value, in bits. Unknown values are assigned the probability of a
// singleton (count 1) so that rare values are treated as highly identifying.
func (d ValueDistribution) ValueSurprisal(value string) float64 {
	var total float64
	for _, c := range d.Counts {
		if c > 0 {
			total += c
		}
	}
	if total == 0 {
		return 0
	}
	c, ok := d.Counts[Normalize(value)]
	if !ok || c <= 0 {
		c = 1
		total++
	}
	return -math.Log2(c / total)
}

// EntropyModel aggregates per-category value distributions for a whole social
// network, allowing profile entropies to be evaluated (Definition 5) and ϕ
// budgets to be derived.
type EntropyModel struct {
	// Population is the total number of users n the distributions were
	// estimated from; it anchors the k-anonymity ϕ rule.
	Population int

	dists map[string]ValueDistribution
}

// NewEntropyModel returns an empty model for a population of n users.
func NewEntropyModel(population int) *EntropyModel {
	return &EntropyModel{
		Population: population,
		dists:      make(map[string]ValueDistribution),
	}
}

// Observe records one occurrence of value under the given header, building the
// empirical distributions incrementally (e.g. while streaming a corpus).
func (m *EntropyModel) Observe(header, value string) {
	h := Normalize(header)
	v := Normalize(value)
	d, ok := m.dists[h]
	if !ok {
		d = ValueDistribution{Header: h, Counts: make(map[string]float64)}
		m.dists[h] = d
	}
	d.Counts[v]++
}

// ObserveProfile records every attribute of the profile.
func (m *EntropyModel) ObserveProfile(p *Profile) {
	for _, a := range p.Attributes() {
		m.Observe(a.Header, a.Value)
	}
}

// SetDistribution installs a pre-computed distribution for a category,
// replacing any prior observations for that header.
func (m *EntropyModel) SetDistribution(d ValueDistribution) {
	m.dists[Normalize(d.Header)] = ValueDistribution{Header: Normalize(d.Header), Counts: d.Counts}
}

// Distribution returns the distribution for a header and whether it is known.
func (m *EntropyModel) Distribution(header string) (ValueDistribution, bool) {
	d, ok := m.dists[Normalize(header)]
	return d, ok
}

// Headers returns the known category headers in sorted order.
func (m *EntropyModel) Headers() []string {
	out := make([]string, 0, len(m.dists))
	for h := range m.dists {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// AttributeEntropy returns S(a) for the category of the given attribute.
// Categories never observed get zero entropy.
func (m *EntropyModel) AttributeEntropy(a Attribute) float64 {
	d, ok := m.dists[Normalize(a.Header)]
	if !ok {
		return 0
	}
	return d.Entropy()
}

// AttributeSurprisal returns -log2 P(header=value) for the specific attribute
// value, a per-value refinement used when ranking disclosure candidates.
func (m *EntropyModel) AttributeSurprisal(a Attribute) float64 {
	d, ok := m.dists[Normalize(a.Header)]
	if !ok {
		return 0
	}
	return d.ValueSurprisal(a.Value)
}

// ProfileEntropy returns S(A_k) = Σ_i S(a^i) (Definition 5), in bits.
func (m *EntropyModel) ProfileEntropy(p *Profile) float64 {
	var s float64
	for _, a := range p.Attributes() {
		s += m.AttributeEntropy(a)
	}
	return s
}

// KAnonymityPhi returns the ϕ budget derived from a k-anonymity requirement
// (Section III-E3, option 1): a user only discloses attribute subsets that at
// least k users are expected to share, i.e. ϕ = log2(n/k) where n is the
// population size.
func (m *EntropyModel) KAnonymityPhi(k int) (float64, error) {
	if k <= 0 {
		return 0, errors.New("attr: k must be positive")
	}
	if m.Population <= 0 {
		return 0, errors.New("attr: entropy model has no population size")
	}
	if k > m.Population {
		return 0, fmt.Errorf("attr: k=%d exceeds population %d", k, m.Population)
	}
	return math.Log2(float64(m.Population) / float64(k)), nil
}

// SensitivePhi returns the ϕ budget derived from a set of sensitive attributes
// (Section III-E3, option 2): ϕ = min_i S(a^i) over the sensitive attributes,
// so that no subset whose entropy could cover even the cheapest sensitive
// attribute is ever disclosed.
func (m *EntropyModel) SensitivePhi(sensitive []Attribute) (float64, error) {
	if len(sensitive) == 0 {
		return 0, errors.New("attr: no sensitive attributes given")
	}
	phi := math.Inf(1)
	for _, a := range sensitive {
		if s := m.AttributeEntropy(a); s < phi {
			phi = s
		}
	}
	return phi, nil
}

// BudgetedSubsets enumerates maximal candidate attribute subsets of p whose
// cumulative entropy stays within phi. Protocol 3 candidates use this to
// bound what they are willing to risk exposing to a possibly-malicious
// initiator: the union of all profiles used for candidate keys must satisfy
// S(∪ A_c) ≤ ϕ.
//
// The returned subsets are sorted by descending attribute count so that the
// candidate tries its most-complete (most likely to match) subsets first, and
// the union of returned subsets is guaranteed to stay within the budget.
func (m *EntropyModel) BudgetedSubsets(p *Profile, phi float64) []*Profile {
	attrs := p.Attributes()
	// Greedy: order attributes by ascending entropy so the budget covers as
	// many attributes as possible, then emit the prefix plus single-attribute
	// fallbacks that individually fit.
	type weighted struct {
		a Attribute
		s float64
	}
	ws := make([]weighted, len(attrs))
	for i, a := range attrs {
		ws[i] = weighted{a: a, s: m.AttributeEntropy(a)}
	}
	sort.SliceStable(ws, func(i, j int) bool { return ws[i].s < ws[j].s })

	var budgetUsed float64
	kept := &Profile{}
	for _, w := range ws {
		if budgetUsed+w.s > phi {
			break
		}
		budgetUsed += w.s
		kept.Add(w.a)
	}
	if kept.Len() == 0 {
		return nil
	}
	subsets := []*Profile{kept}
	// Also expose each strict sub-prefix, so the matcher can try smaller
	// subsets when the full kept set does not decrypt the request. Their
	// union equals kept, so the ϕ bound still holds for the union.
	for n := kept.Len() - 1; n >= 1; n-- {
		sub := NewProfile(kept.Attributes()[:n]...)
		subsets = append(subsets, sub)
	}
	return subsets
}

// WithinBudget reports whether disclosing the union profile stays within phi.
func (m *EntropyModel) WithinBudget(union *Profile, phi float64) bool {
	return m.ProfileEntropy(union) <= phi+1e-9
}
