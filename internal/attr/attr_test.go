package attr

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewNormalizes(t *testing.T) {
	tests := []struct {
		name       string
		header     string
		value      string
		wantCanon  string
		wantHeader string
	}{
		{"simple", "Interest", "Basketball", "interest:basketball", "interest"},
		{"whitespace and punct", " Interest ", "Basket-Ball!!", "interest:basketball", "interest"},
		{"case folding", "SEX", "MALE", "sex:male", "sex"},
		{"plural", "interest", "computer games", "interest:computergame", "interest"},
		{"number to words", "birthyear", "1987", "birthyear:onethousandninehundredeightyseven", "birthyear"},
		{"abbreviation", "profession", "CS engr", "profession:computerscienceengineer", "profession"},
		{"diacritics", "place", "Café Zürich", "place:cafezurich", "place"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a, err := New(tt.header, tt.value)
			if err != nil {
				t.Fatalf("New(%q, %q) error: %v", tt.header, tt.value, err)
			}
			if got := a.Canonical(); got != tt.wantCanon {
				t.Errorf("Canonical() = %q, want %q", got, tt.wantCanon)
			}
			if a.Header != tt.wantHeader {
				t.Errorf("Header = %q, want %q", a.Header, tt.wantHeader)
			}
		})
	}
}

func TestNewEmpty(t *testing.T) {
	if _, err := New("interest", "!!!"); err == nil {
		t.Fatal("New with punctuation-only value should fail")
	}
	if _, err := New("   ", "basketball"); err == nil {
		t.Fatal("New with empty header should fail")
	}
}

func TestParse(t *testing.T) {
	a, err := Parse("interest:Basket Ball")
	if err != nil {
		t.Fatalf("Parse error: %v", err)
	}
	if a.Canonical() != "interest:basketball" {
		t.Errorf("got %q", a.Canonical())
	}
	if _, err := Parse("no-separator"); err == nil {
		t.Error("Parse without separator should fail")
	}
}

func TestEquivalentSpellingsHashIdentically(t *testing.T) {
	pairs := [][2]string{
		{"Basket Ball", "basketball"},
		{"Computer-Games", "computer game"},
		{"NEW YORK", "new  york"},
		{"engineers", "engineer"},
		{"7", "seven"},
		{"café", "cafe"},
	}
	for _, p := range pairs {
		a := MustNew("tag", p[0])
		b := MustNew("tag", p[1])
		if !a.Equal(b) {
			t.Errorf("expected %q and %q to normalize identically: %q vs %q",
				p[0], p[1], a.Canonical(), b.Canonical())
		}
	}
}

func TestProfileAddRemoveContains(t *testing.T) {
	p := NewProfile()
	a := MustNew("interest", "basketball")
	b := MustNew("interest", "chess")

	if !p.Add(a) {
		t.Error("first Add should report true")
	}
	if p.Add(a) {
		t.Error("duplicate Add should report false")
	}
	p.Add(b)
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	if !p.Contains(a) || !p.Contains(b) {
		t.Error("Contains should find both attributes")
	}
	if !p.Remove(a) {
		t.Error("Remove existing should report true")
	}
	if p.Remove(a) {
		t.Error("Remove missing should report false")
	}
	if p.Contains(a) {
		t.Error("removed attribute still present")
	}
}

func TestProfileSortedAndDeduplicated(t *testing.T) {
	p := NewProfile(
		MustNew("z", "last"),
		MustNew("a", "first"),
		MustNew("m", "middle"),
		MustNew("A", "First"), // duplicate of a:first under normalization
	)
	canon := p.Canonicals()
	if !sort.StringsAreSorted(canon) {
		t.Errorf("profile canonicals not sorted: %v", canon)
	}
	if len(canon) != 3 {
		t.Errorf("expected 3 unique attributes, got %d: %v", len(canon), canon)
	}
}

func TestProfileSetOperations(t *testing.T) {
	p, err := ParseProfile("tag:a", "tag:b", "tag:c", "tag:d")
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseProfile("tag:c", "tag:d", "tag:e")
	if err != nil {
		t.Fatal(err)
	}
	inter := p.Intersection(q)
	if got := inter.Canonicals(); !reflect.DeepEqual(got, []string{"tag:c", "tag:d"}) {
		t.Errorf("Intersection = %v", got)
	}
	if p.IntersectionSize(q) != 2 {
		t.Errorf("IntersectionSize = %d, want 2", p.IntersectionSize(q))
	}
	union := p.Union(q)
	if union.Len() != 5 {
		t.Errorf("Union size = %d, want 5", union.Len())
	}
	if !inter.Subset(p) || !inter.Subset(q) {
		t.Error("intersection should be a subset of both")
	}
	if p.Subset(q) {
		t.Error("p is not a subset of q")
	}
	if got := p.Similarity(q); got != 0.5 {
		t.Errorf("Similarity = %v, want 0.5", got)
	}
}

func TestProfileCloneIsDeep(t *testing.T) {
	p, _ := ParseProfile("tag:a", "tag:b")
	c := p.Clone()
	c.Add(MustNew("tag", "c"))
	if p.Len() != 2 {
		t.Errorf("mutating clone changed original: len=%d", p.Len())
	}
	if !p.Equal(NewProfile(MustNew("tag", "a"), MustNew("tag", "b"))) {
		t.Error("original changed")
	}
}

func TestProfileFingerprintStable(t *testing.T) {
	p1 := NewProfile(MustNew("tag", "b"), MustNew("tag", "a"))
	p2 := NewProfile(MustNew("tag", "a"), MustNew("tag", "b"))
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Error("fingerprint should be order-independent")
	}
	if !strings.Contains(p1.String(), "tag:a") {
		t.Errorf("String() = %q", p1.String())
	}
}

// Property: adding attributes in any order yields the same sorted profile.
func TestProfileOrderIndependenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		attrs := make([]Attribute, n)
		for i := range attrs {
			attrs[i] = MustNew("tag", string(rune('a'+rng.Intn(26)))+string(rune('a'+rng.Intn(26))))
		}
		p1 := NewProfile(attrs...)
		shuffled := make([]Attribute, n)
		copy(shuffled, attrs)
		rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		p2 := NewProfile(shuffled...)
		return p1.Equal(p2) && p1.Fingerprint() == p2.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: intersection size is symmetric and bounded by both profile sizes.
func TestIntersectionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *Profile {
			p := NewProfile()
			for i, n := 0, 1+rng.Intn(8); i < n; i++ {
				p.Add(MustNew("tag", string(rune('a'+rng.Intn(12)))))
			}
			return p
		}
		p, q := mk(), mk()
		ab, ba := p.IntersectionSize(q), q.IntersectionSize(p)
		if ab != ba {
			return false
		}
		return ab <= p.Len() && ab <= q.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
