package attr

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueDistributionEntropy(t *testing.T) {
	tests := []struct {
		name string
		d    ValueDistribution
		want float64
	}{
		{
			name: "uniform binary",
			d:    ValueDistribution{Header: "sex", Counts: map[string]float64{"male": 50, "female": 50}},
			want: 1,
		},
		{
			name: "uniform four values",
			d:    ValueDistribution{Header: "x", Counts: map[string]float64{"a": 1, "b": 1, "c": 1, "d": 1}},
			want: 2,
		},
		{
			name: "single value",
			d:    ValueDistribution{Header: "x", Counts: map[string]float64{"only": 10}},
			want: 0,
		},
		{
			name: "empty",
			d:    ValueDistribution{Header: "x", Counts: map[string]float64{}},
			want: 0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.d.Entropy(); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("Entropy() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestValueSurprisal(t *testing.T) {
	d := ValueDistribution{Header: "sex", Counts: map[string]float64{"male": 50, "female": 50}}
	if got := d.ValueSurprisal("male"); math.Abs(got-1) > 1e-9 {
		t.Errorf("ValueSurprisal(male) = %v, want 1", got)
	}
	// Unknown value gets treated as a singleton: -log2(1/101) > 6 bits.
	if got := d.ValueSurprisal("other"); got < 6 {
		t.Errorf("ValueSurprisal(unknown) = %v, want > 6", got)
	}
}

func TestEntropyModelObserveAndProfileEntropy(t *testing.T) {
	m := NewEntropyModel(100)
	for i := 0; i < 50; i++ {
		m.Observe("sex", "male")
		m.Observe("sex", "female")
	}
	for i := 0; i < 25; i++ {
		m.Observe("interest", "a")
		m.Observe("interest", "b")
		m.Observe("interest", "c")
		m.Observe("interest", "d")
	}
	p := NewProfile(MustNew("sex", "male"), MustNew("interest", "a"))
	got := m.ProfileEntropy(p)
	if math.Abs(got-3) > 1e-9 { // 1 bit (sex) + 2 bits (interest)
		t.Errorf("ProfileEntropy = %v, want 3", got)
	}
	if got := m.AttributeEntropy(MustNew("unknown", "x")); got != 0 {
		t.Errorf("unknown category entropy = %v, want 0", got)
	}
	if len(m.Headers()) != 2 {
		t.Errorf("Headers() = %v", m.Headers())
	}
}

func TestKAnonymityPhi(t *testing.T) {
	m := NewEntropyModel(1024)
	phi, err := m.KAnonymityPhi(4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi-8) > 1e-9 { // log2(1024/4) = 8
		t.Errorf("KAnonymityPhi = %v, want 8", phi)
	}
	if _, err := m.KAnonymityPhi(0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := m.KAnonymityPhi(2048); err == nil {
		t.Error("k > population should fail")
	}
	if _, err := NewEntropyModel(0).KAnonymityPhi(2); err == nil {
		t.Error("zero population should fail")
	}
}

func TestSensitivePhi(t *testing.T) {
	m := NewEntropyModel(100)
	m.SetDistribution(ValueDistribution{Header: "sex", Counts: map[string]float64{"male": 1, "female": 1}})
	m.SetDistribution(ValueDistribution{Header: "disease", Counts: map[string]float64{"a": 1, "b": 1, "c": 1, "d": 1, "e": 1, "f": 1, "g": 1, "h": 1}})
	phi, err := m.SensitivePhi([]Attribute{MustNew("disease", "a"), MustNew("sex", "male")})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi-1) > 1e-9 { // min(3 bits, 1 bit) = 1
		t.Errorf("SensitivePhi = %v, want 1", phi)
	}
	if _, err := m.SensitivePhi(nil); err == nil {
		t.Error("empty sensitive set should fail")
	}
}

func TestBudgetedSubsets(t *testing.T) {
	m := NewEntropyModel(100)
	// sex: 1 bit, interest: 2 bits, keyword: 3 bits.
	m.SetDistribution(ValueDistribution{Header: "sex", Counts: map[string]float64{"m": 1, "f": 1}})
	m.SetDistribution(ValueDistribution{Header: "interest", Counts: map[string]float64{"a": 1, "b": 1, "c": 1, "d": 1}})
	m.SetDistribution(ValueDistribution{Header: "keyword", Counts: map[string]float64{"a": 1, "b": 1, "c": 1, "d": 1, "e": 1, "f": 1, "g": 1, "h": 1}})

	p := NewProfile(MustNew("sex", "m"), MustNew("interest", "a"), MustNew("keyword", "a"))

	// Budget of 3.5 bits admits sex (1) + interest (2) but not keyword (3).
	subsets := m.BudgetedSubsets(p, 3.5)
	if len(subsets) == 0 {
		t.Fatal("expected at least one subset")
	}
	union := NewProfile()
	for _, s := range subsets {
		union = union.Union(s)
	}
	if !m.WithinBudget(union, 3.5) {
		t.Errorf("union of budgeted subsets exceeds phi: %v bits", m.ProfileEntropy(union))
	}
	if union.Contains(MustNew("keyword", "a")) {
		t.Error("keyword (3 bits) should have been excluded from a 3.5-bit budget with 3 bits already spent")
	}
	if !union.Contains(MustNew("sex", "m")) || !union.Contains(MustNew("interest", "a")) {
		t.Errorf("expected sex and interest in union, got %v", union)
	}

	// Zero budget admits nothing... unless there are zero-entropy attributes.
	if got := m.BudgetedSubsets(p, 0.5); got != nil {
		for _, s := range got {
			if m.ProfileEntropy(s) > 0.5 {
				t.Errorf("subset %v exceeds tiny budget", s)
			}
		}
	}
}

// Property: the union of all budgeted subsets always respects phi, and every
// subset is a subset of the original profile.
func TestBudgetedSubsetsProperty(t *testing.T) {
	m := NewEntropyModel(1000)
	m.SetDistribution(ValueDistribution{Header: "a", Counts: map[string]float64{"x": 1, "y": 1}})
	m.SetDistribution(ValueDistribution{Header: "b", Counts: map[string]float64{"x": 1, "y": 1, "z": 1, "w": 1}})
	m.SetDistribution(ValueDistribution{Header: "c", Counts: map[string]float64{"1": 1, "2": 1, "3": 1, "4": 1, "5": 1, "6": 1, "7": 1, "8": 1}})

	f := func(hasA, hasB, hasC bool, phiRaw uint8) bool {
		p := NewProfile()
		if hasA {
			p.Add(MustNew("a", "x"))
		}
		if hasB {
			p.Add(MustNew("b", "x"))
		}
		if hasC {
			p.Add(MustNew("c", "1"))
		}
		phi := float64(phiRaw % 10)
		subsets := m.BudgetedSubsets(p, phi)
		union := NewProfile()
		for _, s := range subsets {
			if !s.Subset(p) {
				return false
			}
			union = union.Union(s)
		}
		return m.WithinBudget(union, phi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
