package attr

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestNormalize(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want string
	}{
		{"lowercase", "BasketBall", "basketball"},
		{"whitespace removed", "basket ball", "basketball"},
		{"punctuation removed", "rock'n'roll!", "rocknroll"},
		{"plural", "engineers", "engineer"},
		{"plural ies", "hobbies", "hobby"},
		{"plural ches", "churches", "church"},
		{"plural oes", "heroes", "hero"},
		{"irregular plural", "children", "child"},
		{"keeps ss", "chess", "chess"},
		{"number small", "7", "seven"},
		{"number teens", "13", "thirteen"},
		{"number tens", "42", "fortytwo"},
		{"number hundreds", "300", "threehundred"},
		{"number year", "1987", "onethousandninehundredeightyseven"},
		{"number zero", "0", "zero"},
		{"leading zeros", "007", "seven"},
		{"mixed alnum", "windows7", "windowseven"}, // "windows" singularizes to "window"
		{"abbrev cs", "cs", "computerscience"},
		{"abbrev univ", "Univ", "university"},
		{"diacritics", "Zürich", "zurich"},
		{"empty", "   ", ""},
		{"only punct", "!!!", ""},
		{"hyphenated", "hip-hop", "hiphop"},
		{"date like", "2012-07-31", "twothousandtwelvesevenhundredthirtyone" /* split on hyphen: 2012,07,31 -> two thousand twelve seven thirty one */},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.name == "date like" {
				// Dates split into separate number groups; just assert the
				// output is all letters and deterministic rather than pin the
				// exact wording.
				got := Normalize(tt.in)
				if got == "" || strings.ContainsAny(got, "0123456789") {
					t.Errorf("Normalize(%q) = %q, want purely alphabetic words", tt.in, got)
				}
				if got != Normalize(tt.in) {
					t.Error("Normalize is not deterministic")
				}
				return
			}
			if got := Normalize(tt.in); got != tt.want {
				t.Errorf("Normalize(%q) = %q, want %q", tt.in, got, tt.want)
			}
		})
	}
}

func TestNormalizeWordsKeepsSpaces(t *testing.T) {
	got := NormalizeWords("CS  Engineers, 2 jobs")
	want := "computer science engineer two job"
	if got != want {
		t.Errorf("NormalizeWords = %q, want %q", got, want)
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	inputs := []string{
		"Basket Ball", "engineers", "1987", "cs", "Zürich", "hip-hop DJs",
		"computer games", "New York City", "children", "windows7",
	}
	for _, in := range inputs {
		once := Normalize(in)
		twice := Normalize(once)
		if once != twice {
			t.Errorf("Normalize not idempotent for %q: %q then %q", in, once, twice)
		}
	}
}

// Property: normalization output never contains digits, whitespace,
// punctuation, or uppercase letters that have a lowercase mapping (characters
// such as mathematical capitals have no lowercase form and are left alone).
func TestNormalizeOutputAlphabetProperty(t *testing.T) {
	f := func(s string) bool {
		out := Normalize(s)
		for _, r := range out {
			if unicode.IsDigit(r) || unicode.IsSpace(r) || unicode.IsPunct(r) {
				return false
			}
			if unicode.IsUpper(r) && unicode.ToLower(r) != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: normalization is deterministic and idempotent on arbitrary input.
func TestNormalizeIdempotentProperty(t *testing.T) {
	f := func(s string) bool {
		once := Normalize(s)
		return Normalize(once) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInt64ToWords(t *testing.T) {
	tests := []struct {
		n    int64
		want string
	}{
		{0, "zero"},
		{5, "five"},
		{19, "nineteen"},
		{20, "twenty"},
		{21, "twenty one"},
		{99, "ninety nine"},
		{100, "one hundred"},
		{101, "one hundred one"},
		{110, "one hundred ten"},
		{999, "nine hundred ninety nine"},
		{1000, "one thousand"},
		{1987, "one thousand nine hundred eighty seven"},
		{1000000, "one million"},
		{2500000, "two million five hundred thousand"},
		{1000000000, "one billion"},
	}
	for _, tt := range tests {
		if got := int64ToWords(tt.n); got != tt.want {
			t.Errorf("int64ToWords(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}

func TestSingularize(t *testing.T) {
	tests := []struct{ in, want string }{
		{"engineers", "engineer"},
		{"hobbies", "hobby"},
		{"classes", "class"},
		{"boxes", "box"},
		{"churches", "church"},
		{"wolves", "wolf"},
		{"series", "series"},
		{"chess", "chess"},
		{"basketball", "basketball"},
		{"is", "is"},
		{"bus", "bus"},
	}
	for _, tt := range tests {
		if got := singularize(tt.in); got != tt.want {
			t.Errorf("singularize(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestSplitWords(t *testing.T) {
	got := splitWords("abc123def  7ghi")
	want := []string{"abc", "123", "def", "7", "ghi"}
	if len(got) != len(want) {
		t.Fatalf("splitWords = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitWords = %v, want %v", got, want)
		}
	}
}
