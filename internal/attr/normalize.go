package attr

import (
	"strings"
	"unicode"
)

// Normalize applies the paper's profile-normalization pipeline (Section
// III-B) to a raw attribute header or value so that strings which humans
// consider equivalent produce identical canonical text and therefore
// identical SHA-256 hashes:
//
//  1. accent marks and diacritics are stripped,
//  2. all letters are converted to lower case,
//  3. abbreviations are expanded ("cs" -> "computer science"),
//  4. numbers are converted into words ("2" -> "two"),
//  5. plural words are converted to singular form,
//  6. whitespace and punctuation are removed.
//
// Semantic equivalence between different words (synonyms) is explicitly out
// of scope, exactly as in the paper.
func Normalize(s string) string {
	s = strings.ToLower(s)
	s = stripDiacritics(s)
	words := splitWords(s)
	out := make([]string, 0, len(words))
	for _, w := range words {
		if w == "" {
			continue
		}
		w = expandAbbreviation(w)
		// Expansion may introduce several words ("cs" -> "computer science");
		// each expanded word goes through the remaining steps independently.
		for _, part := range strings.Fields(w) {
			part = numberToWords(part)
			for _, np := range strings.Fields(part) {
				np = singularize(np)
				if np != "" {
					out = append(out, np)
				}
			}
		}
	}
	return strings.Join(out, "")
}

// NormalizeWords is Normalize but keeps single spaces between words, which is
// occasionally useful for presenting normalized text to humans.
func NormalizeWords(s string) string {
	s = strings.ToLower(s)
	s = stripDiacritics(s)
	words := splitWords(s)
	out := make([]string, 0, len(words))
	for _, w := range words {
		if w == "" {
			continue
		}
		w = expandAbbreviation(w)
		for _, part := range strings.Fields(w) {
			part = numberToWords(part)
			for _, np := range strings.Fields(part) {
				np = singularize(np)
				if np != "" {
					out = append(out, np)
				}
			}
		}
	}
	return strings.Join(out, " ")
}

// splitWords breaks the input at whitespace and punctuation, keeping letter
// and digit runs. Digits and letters are kept in separate words so that
// "windows7" normalizes the same way as "windows 7".
func splitWords(s string) []string {
	var words []string
	var cur strings.Builder
	var curDigit bool
	flush := func() {
		if cur.Len() > 0 {
			words = append(words, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r):
			if curDigit {
				flush()
			}
			curDigit = false
			cur.WriteRune(r)
		case unicode.IsDigit(r):
			if !curDigit && cur.Len() > 0 {
				flush()
			}
			curDigit = true
			cur.WriteRune(r)
		default:
			flush()
			curDigit = false
		}
	}
	flush()
	return words
}

// _diacriticFold maps common accented Latin characters to their base letter.
// The stdlib has no transliteration support, so this table covers the Latin-1
// supplement and Latin Extended-A ranges that occur in practice.
var _diacriticFold = map[rune]rune{
	'à': 'a', 'á': 'a', 'â': 'a', 'ã': 'a', 'ä': 'a', 'å': 'a', 'ā': 'a', 'ă': 'a', 'ą': 'a',
	'ç': 'c', 'ć': 'c', 'ĉ': 'c', 'č': 'c',
	'è': 'e', 'é': 'e', 'ê': 'e', 'ë': 'e', 'ē': 'e', 'ĕ': 'e', 'ė': 'e', 'ę': 'e', 'ě': 'e',
	'ì': 'i', 'í': 'i', 'î': 'i', 'ï': 'i', 'ĩ': 'i', 'ī': 'i', 'ĭ': 'i', 'į': 'i', 'ı': 'i',
	'ñ': 'n', 'ń': 'n', 'ņ': 'n', 'ň': 'n',
	'ò': 'o', 'ó': 'o', 'ô': 'o', 'õ': 'o', 'ö': 'o', 'ø': 'o', 'ō': 'o', 'ŏ': 'o', 'ő': 'o',
	'ù': 'u', 'ú': 'u', 'û': 'u', 'ü': 'u', 'ũ': 'u', 'ū': 'u', 'ŭ': 'u', 'ů': 'u', 'ű': 'u', 'ų': 'u',
	'ý': 'y', 'ÿ': 'y', 'ŷ': 'y',
	'ß': 's',
	'ś': 's', 'ŝ': 's', 'ş': 's', 'š': 's',
	'ź': 'z', 'ż': 'z', 'ž': 'z',
	'ğ': 'g', 'ĝ': 'g', 'ġ': 'g', 'ģ': 'g',
	'ł': 'l', 'ĺ': 'l', 'ļ': 'l', 'ľ': 'l',
	'ŕ': 'r', 'ŗ': 'r', 'ř': 'r',
	'ť': 't', 'ţ': 't', 'ț': 't',
	'ď': 'd', 'đ': 'd',
	'À': 'a', 'Á': 'a', 'Â': 'a', 'Ã': 'a', 'Ä': 'a', 'Å': 'a',
	'Ç': 'c',
	'È': 'e', 'É': 'e', 'Ê': 'e', 'Ë': 'e',
	'Ì': 'i', 'Í': 'i', 'Î': 'i', 'Ï': 'i',
	'Ñ': 'n',
	'Ò': 'o', 'Ó': 'o', 'Ô': 'o', 'Õ': 'o', 'Ö': 'o', 'Ø': 'o',
	'Ù': 'u', 'Ú': 'u', 'Û': 'u', 'Ü': 'u',
	'Ý': 'y',
}

func stripDiacritics(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		if folded, ok := _diacriticFold[r]; ok {
			b.WriteRune(folded)
			continue
		}
		// Drop combining marks outright (NFD-decomposed inputs).
		if unicode.Is(unicode.Mn, r) {
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// _abbreviations expands common social-network profile abbreviations. The
// table is intentionally small and public: both the initiator and relays must
// agree on it, just as they must agree on the hash function.
var _abbreviations = map[string]string{
	"cs":      "computer science",
	"comp":    "computer",
	"sci":     "science",
	"eng":     "engineering",
	"engr":    "engineer",
	"univ":    "university",
	"uni":     "university",
	"inst":    "institute",
	"tech":    "technology",
	"mgmt":    "management",
	"dept":    "department",
	"prof":    "professor",
	"dr":      "doctor",
	"mr":      "mister",
	"ms":      "miss",
	"st":      "saint",
	"ave":     "avenue",
	"blvd":    "boulevard",
	"rd":      "road",
	"nyc":     "new york city",
	"ny":      "new york",
	"la":      "los angeles",
	"sf":      "san francisco",
	"uk":      "united kingdom",
	"usa":     "united states",
	"us":      "united states",
	"bball":   "basketball",
	"bsktbll": "basketball",
	"ftbl":    "football",
	"mgr":     "manager",
	"asst":    "assistant",
	"intl":    "international",
	"natl":    "national",
	"assn":    "association",
	"corp":    "corporation",
	"co":      "company",
	"grp":     "group",
	"fav":     "favorite",
	"pic":     "picture",
	"pics":    "pictures",
	"msg":     "message",
	"msgs":    "messages",
	"info":    "information",
	"app":     "application",
	"apps":    "applications",
	"dev":     "developer",
	"devs":    "developers",
	"bio":     "biology",
	"chem":    "chemistry",
	"math":    "mathematics",
	"maths":   "mathematics",
	"phys":    "physics",
	"econ":    "economics",
	"psych":   "psychology",
	"lit":     "literature",
	"phil":    "philosophy",
	"ee":      "electrical engineering",
	"me":      "mechanical engineering",
	"ai":      "artificial intelligence",
	"ml":      "machine learning",
	"db":      "database",
	"os":      "operating system",
	"hr":      "human resources",
	"pr":      "public relations",
	"vp":      "vice president",
	"ceo":     "chief executive officer",
	"cto":     "chief technology officer",
	"cfo":     "chief financial officer",
}

func expandAbbreviation(w string) string {
	if full, ok := _abbreviations[w]; ok {
		return full
	}
	return w
}

var _ones = []string{
	"zero", "one", "two", "three", "four", "five", "six", "seven", "eight", "nine",
	"ten", "eleven", "twelve", "thirteen", "fourteen", "fifteen", "sixteen",
	"seventeen", "eighteen", "nineteen",
}

var _tens = []string{
	"", "", "twenty", "thirty", "forty", "fifty", "sixty", "seventy", "eighty", "ninety",
}

// numberToWords converts a decimal digit string into English words, e.g.
// "1987" -> "one thousand nine hundred eighty seven". Non-numeric words are
// returned unchanged. Numbers too large to matter for profile attributes
// (>= 10^15) are spelled digit by digit.
func numberToWords(w string) string {
	if w == "" {
		return w
	}
	for _, r := range w {
		if !unicode.IsDigit(r) {
			return w
		}
	}
	// Strip leading zeros but keep a single zero.
	trimmed := strings.TrimLeft(w, "0")
	if trimmed == "" {
		return "zero"
	}
	if len(trimmed) > 15 {
		parts := make([]string, 0, len(trimmed))
		for _, r := range trimmed {
			parts = append(parts, _ones[r-'0'])
		}
		return strings.Join(parts, " ")
	}
	var n int64
	for _, r := range trimmed {
		n = n*10 + int64(r-'0')
	}
	return int64ToWords(n)
}

func int64ToWords(n int64) string {
	switch {
	case n < 20:
		return _ones[n]
	case n < 100:
		s := _tens[n/10]
		if n%10 != 0 {
			s += " " + _ones[n%10]
		}
		return s
	case n < 1000:
		s := _ones[n/100] + " hundred"
		if n%100 != 0 {
			s += " " + int64ToWords(n%100)
		}
		return s
	}
	type scale struct {
		value int64
		name  string
	}
	scales := []scale{
		{1_000_000_000_000, "trillion"},
		{1_000_000_000, "billion"},
		{1_000_000, "million"},
		{1_000, "thousand"},
	}
	for _, sc := range scales {
		if n >= sc.value {
			s := int64ToWords(n/sc.value) + " " + sc.name
			if n%sc.value != 0 {
				s += " " + int64ToWords(n%sc.value)
			}
			return s
		}
	}
	return _ones[0] // unreachable for n >= 1000
}

// _irregularPlurals maps irregular English plurals to their singular form.
var _irregularPlurals = map[string]string{
	"children":    "child",
	"men":         "man",
	"women":       "woman",
	"people":      "person",
	"feet":        "foot",
	"teeth":       "tooth",
	"geese":       "goose",
	"mice":        "mouse",
	"lives":       "life",
	"wives":       "wife",
	"knives":      "knife",
	"wolves":      "wolf",
	"leaves":      "leaf",
	"halves":      "half",
	"selves":      "self",
	"shelves":     "shelf",
	"data":        "datum",
	"media":       "medium",
	"criteria":    "criterion",
	"analyses":    "analysis",
	"theses":      "thesis",
	"crises":      "crisis",
	"movies":      "movie",
	"series":      "series",
	"species":     "species",
	"news":        "news",
	"physics":     "physics",
	"politics":    "politics",
	"economics":   "economics",
	"mathematics": "mathematics",
	"athletics":   "athletics",
	"graphics":    "graphics",
	"chess":       "chess",
	"tennis":      "tennis",
	"bus":         "bus",
	"gas":         "gas",
	"lens":        "lens",
	"jeans":       "jeans",
	"glasses":     "glasses",
	"electronics": "electronics",
	"games":       "game",
	"sales":       "sale",
}

// singularize converts a plural English word to singular form using the
// irregular table plus standard suffix rules. Words already singular are
// returned unchanged in the common cases.
func singularize(w string) string {
	if s, ok := _irregularPlurals[w]; ok {
		return s
	}
	n := len(w)
	switch {
	case n > 3 && strings.HasSuffix(w, "ies"):
		return w[:n-3] + "y"
	case n > 4 && strings.HasSuffix(w, "sses"):
		return w[:n-2]
	case n > 4 && (strings.HasSuffix(w, "shes") || strings.HasSuffix(w, "ches") || strings.HasSuffix(w, "xes") || strings.HasSuffix(w, "zes")):
		return w[:n-2]
	case n > 3 && strings.HasSuffix(w, "oes"):
		return w[:n-2]
	case n > 2 && strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") && !strings.HasSuffix(w, "us") && !strings.HasSuffix(w, "is"):
		return w[:n-1]
	default:
		return w
	}
}
