// Package attr models user profiles for the Sealed Bottle mechanism.
//
// A profile is a set of attributes. Each attribute has a header naming its
// category ("interest", "profession", "university", ...) and a value field
// with one value ("basketball"). The package implements the paper's profile
// normalization pipeline (Section III-B), so that two attributes that humans
// would consider equivalent ("Basket Ball", "basketball") hash to the same
// SHA-256 digest, as well as the attribute/profile entropy definitions used
// by Protocol 3 (Definitions 4-6) and the two suggested policies for picking
// the entropy-leakage bound ϕ.
package attr

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Separator joins the header and value of an attribute into its canonical
// textual form "header:value". The canonical form is what gets hashed.
const Separator = ":"

// Common attribute headers used throughout the examples and the synthetic
// Tencent-Weibo-like corpus. Headers are free-form strings; these constants
// only make call sites more readable.
const (
	HeaderTag        = "tag"
	HeaderKeyword    = "keyword"
	HeaderInterest   = "interest"
	HeaderProfession = "profession"
	HeaderUniversity = "university"
	HeaderSex        = "sex"
	HeaderBirthYear  = "birthyear"
	HeaderLocation   = "location"
	HeaderGroup      = "group"
	HeaderContact    = "contact"
	HeaderPlace      = "place"
)

// Attribute is a single profile entry: a category header plus a value.
//
// The zero value is not a valid attribute; use New (which normalizes) or
// construct both fields explicitly and call Canonical.
type Attribute struct {
	// Header names the attribute category, e.g. "interest".
	Header string
	// Value is the attribute value, e.g. "basketball".
	Value string
}

// ErrEmptyAttribute is returned when an attribute normalizes to nothing,
// e.g. its value was only punctuation or whitespace.
var ErrEmptyAttribute = errors.New("attr: attribute is empty after normalization")

// New builds a normalized attribute from a raw header and value, applying the
// full normalization pipeline of Section III-B to both fields.
func New(header, value string) (Attribute, error) {
	n := Normalize(header)
	v := Normalize(value)
	if n == "" || v == "" {
		return Attribute{}, fmt.Errorf("%w: header=%q value=%q", ErrEmptyAttribute, header, value)
	}
	return Attribute{Header: n, Value: v}, nil
}

// MustNew is New but panics on error. It is intended for tests, examples and
// static tables where the inputs are compile-time constants.
func MustNew(header, value string) Attribute {
	a, err := New(header, value)
	if err != nil {
		panic(err)
	}
	return a
}

// Parse parses the canonical "header:value" form. The value may itself
// contain the separator; only the first occurrence splits header from value.
func Parse(s string) (Attribute, error) {
	idx := strings.Index(s, Separator)
	if idx < 0 {
		return Attribute{}, fmt.Errorf("attr: %q is not in header%svalue form", s, Separator)
	}
	return New(s[:idx], s[idx+len(Separator):])
}

// Canonical returns the canonical textual form "header:value" after
// normalizing both fields. Canonical strings are the unit that gets hashed
// into the profile vector.
func (a Attribute) Canonical() string {
	return Normalize(a.Header) + Separator + Normalize(a.Value)
}

// String implements fmt.Stringer using the canonical form.
func (a Attribute) String() string { return a.Canonical() }

// Equal reports whether two attributes are equivalent under normalization.
func (a Attribute) Equal(b Attribute) bool { return a.Canonical() == b.Canonical() }

// Less orders attributes by canonical form; used to sort profiles so that the
// initiator and candidates derive identical profile vectors.
func (a Attribute) Less(b Attribute) bool { return a.Canonical() < b.Canonical() }

// Profile is a user's attribute set A_k = {a_k^1, ..., a_k^{m_k}}.
//
// Profiles keep their attributes sorted by canonical form and free of
// duplicates; the exported constructors maintain this invariant.
type Profile struct {
	attrs []Attribute
}

// NewProfile builds a profile from the given attributes, normalizing,
// de-duplicating and sorting them.
func NewProfile(attrs ...Attribute) *Profile {
	p := &Profile{}
	for _, a := range attrs {
		p.Add(a)
	}
	return p
}

// ParseProfile builds a profile from canonical "header:value" strings.
func ParseProfile(canonical ...string) (*Profile, error) {
	p := &Profile{}
	for _, s := range canonical {
		a, err := Parse(s)
		if err != nil {
			return nil, err
		}
		p.Add(a)
	}
	return p, nil
}

// Add inserts an attribute, keeping the profile sorted and duplicate-free.
// It reports whether the attribute was newly added.
func (p *Profile) Add(a Attribute) bool {
	c := a.Canonical()
	i := sort.Search(len(p.attrs), func(i int) bool { return p.attrs[i].Canonical() >= c })
	if i < len(p.attrs) && p.attrs[i].Canonical() == c {
		return false
	}
	p.attrs = append(p.attrs, Attribute{})
	copy(p.attrs[i+1:], p.attrs[i:])
	p.attrs[i] = Attribute{Header: Normalize(a.Header), Value: Normalize(a.Value)}
	return true
}

// Remove deletes an attribute if present and reports whether it was removed.
func (p *Profile) Remove(a Attribute) bool {
	c := a.Canonical()
	i := sort.Search(len(p.attrs), func(i int) bool { return p.attrs[i].Canonical() >= c })
	if i >= len(p.attrs) || p.attrs[i].Canonical() != c {
		return false
	}
	p.attrs = append(p.attrs[:i], p.attrs[i+1:]...)
	return true
}

// Contains reports whether the profile owns an attribute equivalent to a.
func (p *Profile) Contains(a Attribute) bool {
	c := a.Canonical()
	i := sort.Search(len(p.attrs), func(i int) bool { return p.attrs[i].Canonical() >= c })
	return i < len(p.attrs) && p.attrs[i].Canonical() == c
}

// Len returns the number of attributes m_k.
func (p *Profile) Len() int { return len(p.attrs) }

// Attributes returns a copy of the sorted attribute slice.
func (p *Profile) Attributes() []Attribute {
	out := make([]Attribute, len(p.attrs))
	copy(out, p.attrs)
	return out
}

// Canonicals returns the sorted canonical strings of all attributes. This is
// the exact sequence that is hashed into the profile vector.
func (p *Profile) Canonicals() []string {
	out := make([]string, len(p.attrs))
	for i, a := range p.attrs {
		out[i] = a.Canonical()
	}
	return out
}

// Clone returns a deep copy of the profile.
func (p *Profile) Clone() *Profile {
	return &Profile{attrs: p.Attributes()}
}

// Intersection returns the attributes present in both profiles.
func (p *Profile) Intersection(q *Profile) *Profile {
	out := &Profile{}
	for _, a := range p.attrs {
		if q.Contains(a) {
			out.Add(a)
		}
	}
	return out
}

// IntersectionSize returns |A_p ∩ A_q| without materializing the intersection.
func (p *Profile) IntersectionSize(q *Profile) int {
	n := 0
	for _, a := range p.attrs {
		if q.Contains(a) {
			n++
		}
	}
	return n
}

// Union returns the union of the two attribute sets.
func (p *Profile) Union(q *Profile) *Profile {
	out := p.Clone()
	for _, a := range q.attrs {
		out.Add(a)
	}
	return out
}

// Subset reports whether every attribute of p is owned by q.
func (p *Profile) Subset(q *Profile) bool {
	for _, a := range p.attrs {
		if !q.Contains(a) {
			return false
		}
	}
	return true
}

// Equal reports whether two profiles contain exactly the same attributes.
func (p *Profile) Equal(q *Profile) bool {
	if p.Len() != q.Len() {
		return false
	}
	return p.Subset(q)
}

// Fingerprint returns a stable textual fingerprint of the profile: the sorted
// canonical attributes joined by newlines. Per the paper's observation, more
// than 90% of users have a unique fingerprint, so it can serve as an identity
// proxy in the corpus statistics.
func (p *Profile) Fingerprint() string {
	return strings.Join(p.Canonicals(), "\n")
}

// String implements fmt.Stringer with a compact single-line rendering.
func (p *Profile) String() string {
	return "{" + strings.Join(p.Canonicals(), ", ") + "}"
}

// Similarity returns |A_p ∩ A_q| / |A_p|, the fraction of p's attributes that
// q owns. This matches the paper's threshold θ = (α+β)/m_t when p is the
// request profile.
func (p *Profile) Similarity(q *Profile) float64 {
	if p.Len() == 0 {
		return 0
	}
	return float64(p.IntersectionSize(q)) / float64(p.Len())
}
