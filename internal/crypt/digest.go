// Package crypt provides the symmetric-cryptography substrate of the Sealed
// Bottle mechanism: SHA-256 attribute hashing, profile vectors and profile
// keys (Section III-B of the paper), remainder computation against a small
// prime (Section III-C1), and the two AES-256 sealing modes used by the
// protocols — a verifiable mode carrying confirmation information (Protocol
// 1) and an opaque mode in which a decryptor cannot tell whether its key was
// correct (Protocols 2 and 3).
package crypt

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/big"
)

// DigestSize is the size of an attribute hash in bytes (SHA-256).
const DigestSize = sha256.Size

// Digest is the SHA-256 hash of a normalized attribute (h_k^i = H(a_k^i)).
type Digest [DigestSize]byte

// HashAttribute hashes the canonical form of an attribute.
func HashAttribute(canonical string) Digest {
	return sha256.Sum256([]byte(canonical))
}

// HashAttributeBound hashes an attribute canonical form bound to a dynamic
// key (Section III-D3): H(attribute || dynamicKey). Binding static attributes
// to the holder's current location key makes externally-built dictionaries
// useless, because the same attribute hashes differently at every location.
func HashAttributeBound(canonical string, dynamicKey []byte) Digest {
	h := sha256.New()
	h.Write([]byte(canonical))
	h.Write([]byte{0x00}) // domain separator between attribute text and key
	h.Write(dynamicKey)
	var d Digest
	h.Sum(d[:0])
	return d
}

// HashBytes hashes an arbitrary byte string, used for deriving profile keys
// and dynamic keys.
func HashBytes(b []byte) Digest {
	return sha256.Sum256(b)
}

// Mod returns the digest interpreted as a big-endian unsigned integer reduced
// modulo the small prime p (Theorem 1's remainder r = h mod p).
func (d Digest) Mod(p uint32) uint32 {
	if p == 0 {
		return 0
	}
	// Horner evaluation over the bytes: cheap and allocation-free, matching
	// the "Mod p" basic operation the paper benchmarks in Table IV.
	var rem uint64
	for _, b := range d {
		rem = (rem<<8 | uint64(b)) % uint64(p)
	}
	return uint32(rem)
}

// Big returns the digest as a big integer, for use with the hint-matrix field
// arithmetic.
func (d Digest) Big() *big.Int {
	return new(big.Int).SetBytes(d[:])
}

// Equal compares two digests in constant time.
func (d Digest) Equal(o Digest) bool {
	return subtle.ConstantTimeCompare(d[:], o[:]) == 1
}

// IsZero reports whether the digest is all zero bytes (the sentinel used for
// "unknown" positions in candidate profile vectors).
func (d Digest) IsZero() bool {
	var zero Digest
	return subtle.ConstantTimeCompare(d[:], zero[:]) == 1
}

// String renders a shortened hexadecimal form for logs and debugging.
func (d Digest) String() string {
	h := hex.EncodeToString(d[:])
	return h[:8] + "…" + h[len(h)-8:]
}

// DigestFromBig converts a non-negative big integer (< 2^256) back into a
// digest. Values produced by solving the hint system are converted back this
// way before being re-hashed into candidate profile keys.
func DigestFromBig(x *big.Int) (Digest, error) {
	var d Digest
	if x.Sign() < 0 || x.BitLen() > DigestSize*8 {
		return d, fmt.Errorf("crypt: value does not fit in a %d-byte digest", DigestSize)
	}
	x.FillBytes(d[:])
	return d, nil
}

// DigestFromBytes copies a 32-byte slice into a Digest.
func DigestFromBytes(b []byte) (Digest, error) {
	var d Digest
	if len(b) != DigestSize {
		return d, fmt.Errorf("crypt: digest must be %d bytes, got %d", DigestSize, len(b))
	}
	copy(d[:], b)
	return d, nil
}

// Uint64 folds the digest into a uint64, handy for deterministic bucketing in
// the corpus statistics (never used for security decisions).
func (d Digest) Uint64() uint64 {
	return binary.BigEndian.Uint64(d[:8])
}
