package crypt

import (
	"testing"
	"testing/quick"

	"sealedbottle/internal/attr"
)

func sampleProfile(t *testing.T) *attr.Profile {
	t.Helper()
	return attr.NewProfile(
		attr.MustNew("sex", "male"),
		attr.MustNew("university", "columbia"),
		attr.MustNew("interest", "basketball"),
		attr.MustNew("interest", "computer games"),
		attr.MustNew("profession", "engineer"),
	)
}

func TestVectorFromProfile(t *testing.T) {
	p := sampleProfile(t)
	v, err := VectorFromProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != p.Len() {
		t.Fatalf("vector length %d, want %d", v.Len(), p.Len())
	}
	// Each entry must be the hash of the corresponding sorted canonical.
	for i, c := range p.Canonicals() {
		if !v[i].Equal(HashAttribute(c)) {
			t.Errorf("entry %d does not match hash of %q", i, c)
		}
	}
	if _, err := VectorFromProfile(attr.NewProfile()); err == nil {
		t.Error("empty profile should fail")
	}
}

func TestVectorOrderIndependentOfInsertionOrder(t *testing.T) {
	p1 := attr.NewProfile(attr.MustNew("tag", "a"), attr.MustNew("tag", "b"), attr.MustNew("tag", "c"))
	p2 := attr.NewProfile(attr.MustNew("tag", "c"), attr.MustNew("tag", "a"), attr.MustNew("tag", "b"))
	v1, _ := VectorFromProfile(p1)
	v2, _ := VectorFromProfile(p2)
	if !v1.Equal(v2) {
		t.Error("profile vectors must not depend on attribute insertion order")
	}
	k1, _ := v1.Key()
	k2, _ := v2.Key()
	if !k1.Equal(k2) {
		t.Error("profile keys must not depend on attribute insertion order")
	}
}

func TestVectorFromProfileBound(t *testing.T) {
	p := sampleProfile(t)
	plain, _ := VectorFromProfile(p)
	bound, err := VectorFromProfileBound(p, []byte("dynamic-location-key"))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Equal(bound) {
		t.Error("bound vector must differ from plain vector")
	}
	// Empty dynamic key degrades to plain hashing.
	degraded, _ := VectorFromProfileBound(p, nil)
	if !degraded.Equal(plain) {
		t.Error("nil dynamic key should equal plain hashing")
	}
	if _, err := VectorFromProfileBound(attr.NewProfile(), []byte("k")); err == nil {
		t.Error("empty profile should fail")
	}
}

func TestVectorFromCanonicals(t *testing.T) {
	v, err := VectorFromCanonicals([]string{"tag:a", "tag:b"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 || !v[0].Equal(HashAttribute("tag:a")) {
		t.Error("unexpected vector content")
	}
	if _, err := VectorFromCanonicals(nil); err == nil {
		t.Error("empty canonical list should fail")
	}
}

func TestKeyDistinctForDifferentProfiles(t *testing.T) {
	p := sampleProfile(t)
	q := p.Clone()
	q.Add(attr.MustNew("interest", "chess"))
	vp, _ := VectorFromProfile(p)
	vq, _ := VectorFromProfile(q)
	kp, err := vp.Key()
	if err != nil {
		t.Fatal(err)
	}
	kq, err := vq.Key()
	if err != nil {
		t.Fatal(err)
	}
	if kp.Equal(kq) {
		t.Error("different profiles should produce different keys")
	}
	if _, err := (ProfileVector{}).Key(); err == nil {
		t.Error("empty vector key should fail")
	}
}

func TestRemaindersMatchDigestMod(t *testing.T) {
	p := sampleProfile(t)
	v, _ := VectorFromProfile(p)
	const prime = 11
	r := v.Remainders(prime)
	if len(r) != v.Len() {
		t.Fatalf("remainder length %d", len(r))
	}
	for i := range r {
		if r[i] != v[i].Mod(prime) {
			t.Errorf("remainder %d mismatch", i)
		}
		if r[i] >= prime {
			t.Errorf("remainder %d out of range", r[i])
		}
	}
}

func TestVectorCloneAndContains(t *testing.T) {
	p := sampleProfile(t)
	v, _ := VectorFromProfile(p)
	c := v.Clone()
	c[0] = Digest{}
	if v[0].IsZero() {
		t.Error("Clone must be independent")
	}
	if !v.Contains(HashAttribute("sex:male")) {
		t.Error("Contains should find an owned attribute hash")
	}
	if v.Contains(HashAttribute("sex:unknown")) {
		t.Error("Contains should not find a foreign hash")
	}
	if v.Equal(ProfileVector{}) {
		t.Error("different lengths must not be equal")
	}
}

func TestKeyHelpers(t *testing.T) {
	var zero Key
	if !zero.IsZero() {
		t.Error("zero key should report IsZero")
	}
	k, err := KeyFromBytes(make([]byte, KeySize))
	if err != nil {
		t.Fatal(err)
	}
	if !k.IsZero() {
		t.Error("zero bytes should yield zero key")
	}
	if _, err := KeyFromBytes(make([]byte, 16)); err == nil {
		t.Error("short key should fail")
	}
	d := HashAttribute("x")
	if KeyFromDigest(d).IsZero() {
		t.Error("digest key should not be zero")
	}
	if len(k.String()) == 0 {
		t.Error("String should not be empty")
	}
}

// Property: two profiles have equal keys iff they have equal attribute sets.
func TestKeyCollisionFreeProperty(t *testing.T) {
	f := func(seedA, seedB uint8) bool {
		mk := func(seed uint8) *attr.Profile {
			p := attr.NewProfile()
			for i := 0; i < 3; i++ {
				p.Add(attr.MustNew("tag", string(rune('a'+(seed>>(2*i))%4))))
			}
			return p
		}
		pa, pb := mk(seedA), mk(seedB)
		va, _ := VectorFromProfile(pa)
		vb, _ := VectorFromProfile(pb)
		ka, _ := va.Key()
		kb, _ := vb.Key()
		return ka.Equal(kb) == pa.Equal(pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
