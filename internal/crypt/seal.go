package crypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

// The Sealed Bottle protocols need two different sealing behaviours:
//
//   - Protocol 1 includes "public predefined confirmation information" in the
//     sealed message so that a candidate can verify locally whether its
//     candidate key decrypted the message correctly. We realize this with
//     AES-256-CTR plus an HMAC-SHA-256 confirmation tag (encrypt-then-MAC),
//     which plays exactly the role of the paper's confirmation string.
//
//   - Protocols 2 and 3 deliberately omit any confirmation so that a
//     candidate (who might hold a stolen attribute dictionary) cannot test
//     guesses offline. We realize this with plain AES-256-CTR: decryption
//     under a wrong key silently yields garbage that is indistinguishable
//     from a correct decryption.
//
// Both forms use a fresh random nonce per message and never reveal the
// profile key or any attribute hash on the wire.

const (
	// NonceSize is the AES-CTR nonce size used by both sealing modes.
	NonceSize = aes.BlockSize
	// TagSize is the HMAC-SHA-256 confirmation tag size of the verifiable mode.
	TagSize = sha256.Size
	// VerifiableOverhead is the ciphertext expansion of SealVerifiable.
	VerifiableOverhead = NonceSize + TagSize
	// OpaqueOverhead is the ciphertext expansion of SealOpaque.
	OpaqueOverhead = NonceSize
)

// ErrDecryptFailed indicates that a verifiable seal's confirmation tag did
// not match, i.e. the key is wrong or the ciphertext was tampered with.
var ErrDecryptFailed = errors.New("crypt: decryption failed (wrong key or corrupted ciphertext)")

func newCTR(key Key, nonce []byte) (cipher.Stream, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("crypt: building AES cipher: %w", err)
	}
	return cipher.NewCTR(block, nonce), nil
}

func confirmationTag(key Key, nonce, ciphertext []byte) []byte {
	// Derive a distinct MAC key from the sealing key so the same profile key
	// can serve both encryption and confirmation without interference.
	mk := sha256.Sum256(append([]byte("sealedbottle/confirmation-key/v1"), key[:]...))
	mac := hmac.New(sha256.New, mk[:])
	mac.Write(nonce)
	mac.Write(ciphertext)
	return mac.Sum(nil)
}

// SealVerifiable encrypts plaintext under key with confirmation information
// attached (Protocol 1 style). Output layout: nonce || ciphertext || tag.
func SealVerifiable(rng io.Reader, key Key, plaintext []byte) ([]byte, error) {
	nonce := make([]byte, NonceSize)
	if _, err := io.ReadFull(rng, nonce); err != nil {
		return nil, fmt.Errorf("crypt: generating nonce: %w", err)
	}
	stream, err := newCTR(key, nonce)
	if err != nil {
		return nil, err
	}
	out := make([]byte, NonceSize+len(plaintext)+TagSize)
	copy(out, nonce)
	stream.XORKeyStream(out[NonceSize:NonceSize+len(plaintext)], plaintext)
	tag := confirmationTag(key, nonce, out[NonceSize:NonceSize+len(plaintext)])
	copy(out[NonceSize+len(plaintext):], tag)
	return out, nil
}

// OpenVerifiable decrypts a SealVerifiable message, verifying the
// confirmation tag first. A wrong key returns ErrDecryptFailed.
func OpenVerifiable(key Key, sealed []byte) ([]byte, error) {
	if len(sealed) < VerifiableOverhead {
		return nil, fmt.Errorf("crypt: sealed message too short (%d bytes)", len(sealed))
	}
	nonce := sealed[:NonceSize]
	ciphertext := sealed[NonceSize : len(sealed)-TagSize]
	tag := sealed[len(sealed)-TagSize:]
	want := confirmationTag(key, nonce, ciphertext)
	if !hmac.Equal(tag, want) {
		return nil, ErrDecryptFailed
	}
	stream, err := newCTR(key, nonce)
	if err != nil {
		return nil, err
	}
	plaintext := make([]byte, len(ciphertext))
	stream.XORKeyStream(plaintext, ciphertext)
	return plaintext, nil
}

// SealOpaque encrypts plaintext under key with no confirmation information
// (Protocol 2/3 style). Output layout: nonce || ciphertext.
func SealOpaque(rng io.Reader, key Key, plaintext []byte) ([]byte, error) {
	nonce := make([]byte, NonceSize)
	if _, err := io.ReadFull(rng, nonce); err != nil {
		return nil, fmt.Errorf("crypt: generating nonce: %w", err)
	}
	stream, err := newCTR(key, nonce)
	if err != nil {
		return nil, err
	}
	out := make([]byte, NonceSize+len(plaintext))
	copy(out, nonce)
	stream.XORKeyStream(out[NonceSize:], plaintext)
	return out, nil
}

// OpenOpaque decrypts a SealOpaque message. It always succeeds structurally:
// with the wrong key the returned bytes are uniformly-looking garbage, which
// is precisely the property Protocols 2 and 3 rely on.
func OpenOpaque(key Key, sealed []byte) ([]byte, error) {
	if len(sealed) < OpaqueOverhead {
		return nil, fmt.Errorf("crypt: sealed message too short (%d bytes)", len(sealed))
	}
	nonce := sealed[:NonceSize]
	stream, err := newCTR(key, nonce)
	if err != nil {
		return nil, err
	}
	plaintext := make([]byte, len(sealed)-NonceSize)
	stream.XORKeyStream(plaintext, sealed[NonceSize:])
	return plaintext, nil
}

// NewSessionKey draws a fresh 256-bit session key (the protocols' random x
// and y values).
func NewSessionKey(rng io.Reader) (Key, error) {
	var k Key
	if _, err := io.ReadFull(rng, k[:]); err != nil {
		return Key{}, fmt.Errorf("crypt: generating session key: %w", err)
	}
	return k, nil
}

// CombineKeys derives the pairwise channel key from the initiator's x and the
// matching user's y. The paper writes the combined key as "x + y"; we derive
// it as SHA-256(x || y) so the combination is a uniformly distributed AES key
// regardless of the algebraic structure of x and y.
func CombineKeys(x, y Key) Key {
	h := sha256.New()
	h.Write([]byte("sealedbottle/channel-key/v1"))
	h.Write(x[:])
	h.Write(y[:])
	var k Key
	h.Sum(k[:0])
	return k
}

// DefaultRand exposes the cryptographically secure source used by production
// call sites; tests may substitute a deterministic reader.
func DefaultRand() io.Reader { return rand.Reader }
