package crypt

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
	"testing/quick"
)

func testKey(tb testing.TB, seed byte) Key {
	tb.Helper()
	var k Key
	for i := range k {
		k[i] = seed + byte(i)
	}
	return k
}

func TestSealVerifiableRoundTrip(t *testing.T) {
	key := testKey(t, 1)
	plaintext := []byte("confirmation||x=0123456789abcdef")
	sealed, err := SealVerifiable(rand.Reader, key, plaintext)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != len(plaintext)+VerifiableOverhead {
		t.Errorf("sealed length %d, want %d", len(sealed), len(plaintext)+VerifiableOverhead)
	}
	got, err := OpenVerifiable(key, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plaintext) {
		t.Error("round trip mismatch")
	}
}

func TestOpenVerifiableWrongKey(t *testing.T) {
	sealed, err := SealVerifiable(rand.Reader, testKey(t, 1), []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenVerifiable(testKey(t, 2), sealed); !errors.Is(err, ErrDecryptFailed) {
		t.Errorf("wrong key should yield ErrDecryptFailed, got %v", err)
	}
}

func TestOpenVerifiableTamperDetected(t *testing.T) {
	key := testKey(t, 3)
	sealed, err := SealVerifiable(rand.Reader, key, []byte("secret message"))
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, NonceSize + 1, len(sealed) - 1} {
		tampered := append([]byte(nil), sealed...)
		tampered[idx] ^= 0x80
		if _, err := OpenVerifiable(key, tampered); !errors.Is(err, ErrDecryptFailed) {
			t.Errorf("tamper at %d not detected: %v", idx, err)
		}
	}
	if _, err := OpenVerifiable(key, sealed[:10]); err == nil {
		t.Error("truncated message should fail")
	}
}

func TestSealOpaqueRoundTrip(t *testing.T) {
	key := testKey(t, 5)
	plaintext := bytes.Repeat([]byte{0x42}, KeySize)
	sealed, err := SealOpaque(rand.Reader, key, plaintext)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != len(plaintext)+OpaqueOverhead {
		t.Errorf("sealed length %d, want %d", len(sealed), len(plaintext)+OpaqueOverhead)
	}
	got, err := OpenOpaque(key, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plaintext) {
		t.Error("round trip mismatch")
	}
}

func TestOpenOpaqueWrongKeyIsSilentGarbage(t *testing.T) {
	key := testKey(t, 6)
	plaintext := bytes.Repeat([]byte{0x42}, KeySize)
	sealed, err := SealOpaque(rand.Reader, key, plaintext)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OpenOpaque(testKey(t, 7), sealed)
	if err != nil {
		t.Fatalf("opaque open must not error on wrong key: %v", err)
	}
	if bytes.Equal(got, plaintext) {
		t.Error("wrong key should not recover the plaintext")
	}
	if len(got) != len(plaintext) {
		t.Error("output length should match plaintext length")
	}
	if _, err := OpenOpaque(key, sealed[:4]); err == nil {
		t.Error("truncated message should fail")
	}
}

func TestSealsAreRandomized(t *testing.T) {
	key := testKey(t, 8)
	a, _ := SealOpaque(rand.Reader, key, []byte("same message"))
	b, _ := SealOpaque(rand.Reader, key, []byte("same message"))
	if bytes.Equal(a, b) {
		t.Error("sealing the same message twice should produce different ciphertexts")
	}
	c, _ := SealVerifiable(rand.Reader, key, []byte("same message"))
	d, _ := SealVerifiable(rand.Reader, key, []byte("same message"))
	if bytes.Equal(c, d) {
		t.Error("verifiable sealing should also be randomized")
	}
}

func TestNewSessionKey(t *testing.T) {
	x, err := NewSessionKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	y, err := NewSessionKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if x.Equal(y) {
		t.Error("independent session keys should differ")
	}
	if x.IsZero() {
		t.Error("session key should not be zero")
	}
}

func TestCombineKeys(t *testing.T) {
	x, _ := NewSessionKey(rand.Reader)
	y, _ := NewSessionKey(rand.Reader)
	xy := CombineKeys(x, y)
	if xy.Equal(CombineKeys(y, x)) {
		t.Error("combination should be role-ordered (initiator key first)")
	}
	if !xy.Equal(CombineKeys(x, y)) {
		t.Error("combination should be deterministic")
	}
	if xy.Equal(x) || xy.Equal(y) {
		t.Error("combined key should differ from both inputs")
	}
}

func TestDefaultRand(t *testing.T) {
	buf := make([]byte, 8)
	if _, err := DefaultRand().Read(buf); err != nil {
		t.Fatalf("DefaultRand read failed: %v", err)
	}
}

// Property: both sealing modes round-trip arbitrary plaintext under arbitrary
// keys, and the verifiable mode rejects a flipped key bit.
func TestSealRoundTripProperty(t *testing.T) {
	f := func(keyBytes [KeySize]byte, plaintext []byte, flipBit uint16) bool {
		key := Key(keyBytes)
		sv, err := SealVerifiable(rand.Reader, key, plaintext)
		if err != nil {
			return false
		}
		pv, err := OpenVerifiable(key, sv)
		if err != nil || !bytes.Equal(pv, plaintext) {
			return false
		}
		so, err := SealOpaque(rand.Reader, key, plaintext)
		if err != nil {
			return false
		}
		po, err := OpenOpaque(key, so)
		if err != nil || !bytes.Equal(po, plaintext) {
			return false
		}
		// Flip one bit of the key: verifiable open must fail.
		wrong := key
		wrong[int(flipBit)%KeySize] ^= 1 << (flipBit % 8)
		if wrong.Equal(key) {
			return true
		}
		if _, err := OpenVerifiable(wrong, sv); err == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
