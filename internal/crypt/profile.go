package crypt

import (
	"crypto/sha256"
	"errors"

	"sealedbottle/internal/attr"
)

// ProfileVector is the sorted vector of attribute hashes
// H_k = [h_k^1, ..., h_k^{m_k}]^T (Eq. 2). The ordering is the lexicographic
// order of the canonical attribute strings, which both the initiator and all
// relays can reproduce independently.
type ProfileVector []Digest

// ErrEmptyProfile is returned when a key or vector is requested for a profile
// with no attributes.
var ErrEmptyProfile = errors.New("crypt: profile has no attributes")

// VectorFromProfile hashes every attribute of the (already sorted) profile.
func VectorFromProfile(p *attr.Profile) (ProfileVector, error) {
	if p.Len() == 0 {
		return nil, ErrEmptyProfile
	}
	canon := p.Canonicals()
	v := make(ProfileVector, len(canon))
	for i, c := range canon {
		v[i] = HashAttribute(c)
	}
	return v, nil
}

// VectorFromProfileBound hashes every attribute bound to the dynamic key
// (Section III-D3). Passing a nil or empty dynamic key degrades to plain
// attribute hashing.
func VectorFromProfileBound(p *attr.Profile, dynamicKey []byte) (ProfileVector, error) {
	if len(dynamicKey) == 0 {
		return VectorFromProfile(p)
	}
	if p.Len() == 0 {
		return nil, ErrEmptyProfile
	}
	canon := p.Canonicals()
	v := make(ProfileVector, len(canon))
	for i, c := range canon {
		v[i] = HashAttributeBound(c, dynamicKey)
	}
	return v, nil
}

// VectorFromCanonicals hashes a pre-normalized, pre-sorted list of canonical
// attribute strings. Callers are responsible for the ordering invariant.
func VectorFromCanonicals(canonicals []string) (ProfileVector, error) {
	if len(canonicals) == 0 {
		return nil, ErrEmptyProfile
	}
	v := make(ProfileVector, len(canonicals))
	for i, c := range canonicals {
		v[i] = HashAttribute(c)
	}
	return v, nil
}

// Len returns the number of attribute hashes m_k.
func (v ProfileVector) Len() int { return len(v) }

// Clone returns a copy of the vector.
func (v ProfileVector) Clone() ProfileVector {
	out := make(ProfileVector, len(v))
	copy(out, v)
	return out
}

// Equal reports element-wise equality.
func (v ProfileVector) Equal(o ProfileVector) bool {
	if len(v) != len(o) {
		return false
	}
	eq := true
	for i := range v {
		if !v[i].Equal(o[i]) {
			eq = false
		}
	}
	return eq
}

// Contains reports whether the vector contains the given attribute hash.
func (v ProfileVector) Contains(d Digest) bool {
	for _, h := range v {
		if h.Equal(d) {
			return true
		}
	}
	return false
}

// Key derives the profile key K_k = H(H_k) (Eq. 3): the SHA-256 hash of the
// concatenated attribute hashes, used directly as an AES-256 key.
func (v ProfileVector) Key() (Key, error) {
	if len(v) == 0 {
		return Key{}, ErrEmptyProfile
	}
	h := sha256.New()
	for _, d := range v {
		h.Write(d[:])
	}
	var k Key
	h.Sum(k[:0])
	return k, nil
}

// Remainders returns the remainder vector R_k = [h mod p, ...] (Eq. 4).
func (v ProfileVector) Remainders(p uint32) []uint32 {
	out := make([]uint32, len(v))
	for i, d := range v {
		out[i] = d.Mod(p)
	}
	return out
}

// KeySize is the AES-256 key size in bytes.
const KeySize = 32

// Key is a 256-bit symmetric key — either a profile key K = H(H_k) or a
// session key (the random x and y values of the protocols).
type Key [KeySize]byte

// KeyFromBytes copies a 32-byte slice into a Key.
func KeyFromBytes(b []byte) (Key, error) {
	var k Key
	if len(b) != KeySize {
		return k, errors.New("crypt: key must be 32 bytes")
	}
	copy(k[:], b)
	return k, nil
}

// KeyFromDigest reinterprets a digest as a key.
func KeyFromDigest(d Digest) Key { return Key(d) }

// Equal compares two keys in constant time.
func (k Key) Equal(o Key) bool {
	return Digest(k).Equal(Digest(o))
}

// IsZero reports whether the key is all zeros.
func (k Key) IsZero() bool { return Digest(k).IsZero() }

// String renders a shortened non-sensitive fingerprint of the key (the hash
// of the key, truncated), never the key material itself.
func (k Key) String() string {
	fp := sha256.Sum256(k[:])
	return "key:" + Digest(fp).String()
}
