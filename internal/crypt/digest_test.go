package crypt

import (
	"crypto/sha256"
	"math/big"
	"testing"
	"testing/quick"
)

func TestHashAttributeDeterministic(t *testing.T) {
	a := HashAttribute("interest:basketball")
	b := HashAttribute("interest:basketball")
	if !a.Equal(b) {
		t.Error("same input must hash identically")
	}
	c := HashAttribute("interest:chess")
	if a.Equal(c) {
		t.Error("different inputs should not collide")
	}
	want := sha256.Sum256([]byte("interest:basketball"))
	if a != Digest(want) {
		t.Error("HashAttribute must be plain SHA-256 of the canonical form")
	}
}

func TestHashAttributeBound(t *testing.T) {
	plain := HashAttribute("interest:basketball")
	bound1 := HashAttributeBound("interest:basketball", []byte("locA"))
	bound2 := HashAttributeBound("interest:basketball", []byte("locB"))
	if plain.Equal(bound1) {
		t.Error("bound hash must differ from plain hash")
	}
	if bound1.Equal(bound2) {
		t.Error("different dynamic keys must yield different hashes")
	}
	if !bound1.Equal(HashAttributeBound("interest:basketball", []byte("locA"))) {
		t.Error("bound hash must be deterministic")
	}
}

func TestDigestMod(t *testing.T) {
	tests := []struct {
		name string
		in   string
		p    uint32
	}{
		{"p=11", "interest:basketball", 11},
		{"p=23", "sex:male", 23},
		{"p=7", "university:columbia", 7},
		{"p=65521", "profession:engineer", 65521},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := HashAttribute(tt.in)
			got := d.Mod(tt.p)
			want := new(big.Int).Mod(d.Big(), big.NewInt(int64(tt.p))).Uint64()
			if uint64(got) != want {
				t.Errorf("Mod(%d) = %d, want %d", tt.p, got, want)
			}
			if got >= tt.p {
				t.Errorf("remainder %d out of range for p=%d", got, tt.p)
			}
		})
	}
	var d Digest
	if d.Mod(0) != 0 {
		t.Error("Mod(0) should return 0, not panic")
	}
}

// Property: Digest.Mod agrees with math/big for arbitrary content and primes.
func TestDigestModMatchesBigProperty(t *testing.T) {
	f := func(data []byte, praw uint16) bool {
		p := uint32(praw%1000) + 2
		d := HashBytes(data)
		want := new(big.Int).Mod(d.Big(), big.NewInt(int64(p))).Uint64()
		return uint64(d.Mod(p)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Theorem 1 — equal hashes have equal remainders, so differing
// remainders prove differing hashes.
func TestTheorem1Property(t *testing.T) {
	f := func(a, b string, praw uint16) bool {
		p := uint32(praw%200) + 2
		ha, hb := HashAttribute(a), HashAttribute(b)
		if ha.Equal(hb) {
			return ha.Mod(p) == hb.Mod(p)
		}
		// Contrapositive direction: if remainders differ the hashes differ.
		if ha.Mod(p) != hb.Mod(p) && ha.Equal(hb) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDigestBigRoundTrip(t *testing.T) {
	d := HashAttribute("tag:music")
	back, err := DigestFromBig(d.Big())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(d) {
		t.Error("Big/DigestFromBig round trip failed")
	}
	if _, err := DigestFromBig(big.NewInt(-1)); err == nil {
		t.Error("negative value should fail")
	}
	tooBig := new(big.Int).Lsh(big.NewInt(1), 300)
	if _, err := DigestFromBig(tooBig); err == nil {
		t.Error("oversized value should fail")
	}
}

func TestDigestFromBytes(t *testing.T) {
	raw := make([]byte, DigestSize)
	raw[0] = 0xAB
	d, err := DigestFromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 0xAB {
		t.Error("content not copied")
	}
	if _, err := DigestFromBytes(raw[:10]); err == nil {
		t.Error("short input should fail")
	}
}

func TestDigestZeroAndString(t *testing.T) {
	var zero Digest
	if !zero.IsZero() {
		t.Error("zero digest should report IsZero")
	}
	d := HashAttribute("x")
	if d.IsZero() {
		t.Error("real digest should not be zero")
	}
	if len(d.String()) == 0 {
		t.Error("String should not be empty")
	}
	if d.Uint64() == 0 && d[0]|d[1]|d[2]|d[3]|d[4]|d[5]|d[6]|d[7] != 0 {
		t.Error("Uint64 should fold the leading bytes")
	}
}
