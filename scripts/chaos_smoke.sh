#!/usr/bin/env bash
# chaos_smoke.sh — 3-rack R=2 replication chaos smoke.
#
# Starts three replicated bottlerack processes, drives them with loadgen at
# replication factor 2, SIGKILLs one rack mid-load, restarts it, and asserts:
#
#   1. loadgen finishes clean: every bottle racked and — via -verify-replies —
#      every acknowledged reply (matched friending) drained back. R=2 keeps
#      the cluster fully serving through the crash.
#   2. The restarted rack converges via hinted handoff: the survivors stream
#      their queued hints to it and its handoff-applied counter goes nonzero.
#
# Run from the repository root:  ./scripts/chaos_smoke.sh
set -euo pipefail

BIN=${BIN:-$(mktemp -d)}
OUT=${OUT:-$BIN}
BOTTLES=${BOTTLES:-60000}

go build -o "$BIN/bottlerack" ./cmd/bottlerack
go build -o "$BIN/loadgen" ./cmd/loadgen

P0=7127 P1=7128 P2=7129
PEERS="r0=127.0.0.1:$P0,r1=127.0.0.1:$P1,r2=127.0.0.1:$P2"

start_rack() { # name port -> pid
  "$BIN/bottlerack" -addr "127.0.0.1:$2" -tag "$1" \
    -replicate -self "$1" -peers "$PEERS" -hint-interval 500ms \
    -stats 1s >>"$OUT/$1.log" 2>&1 &
  echo $!
}

wait_port() {
  for _ in $(seq 1 50); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then exec 3>&-; return 0; fi
    sleep 0.2
  done
  echo "chaos: rack on port $1 never came up" >&2
  return 1
}

PID0=$(start_rack r0 $P0)
PID1=$(start_rack r1 $P1)
PID2=$(start_rack r2 $P2)
trap 'kill "$PID0" "$PID1" "$PID2" 2>/dev/null || true' EXIT
wait_port $P0 && wait_port $P1 && wait_port $P2

"$BIN/loadgen" -addrs "127.0.0.1:$P0,127.0.0.1:$P1,127.0.0.1:$P2" \
  -bottles "$BOTTLES" -batch 32 -submitters 4 -sweepers 2 \
  -replication 2 -verify-replies >"$OUT/loadgen.out" 2>&1 &
LG=$!

sleep 2
# The kill must land mid-load or the run proved nothing.
if ! kill -0 "$LG" 2>/dev/null; then
  echo "chaos: loadgen finished before the kill — raise BOTTLES" >&2
  cat "$OUT/loadgen.out" >&2
  exit 1
fi
kill -9 "$PID2"
echo "chaos: SIGKILLed rack r2 mid-load"

# Survivors queue hints for r2 while the ring fails over; then r2 returns
# empty (in-memory rack) and must converge from its peers' hint streams.
sleep 2
PID2=$(start_rack r2 $P2)
wait_port $P2
echo "chaos: restarted rack r2"

if ! wait "$LG"; then
  echo "chaos: loadgen failed — friendings or bottles were lost" >&2
  cat "$OUT/loadgen.out" >&2
  exit 1
fi
cat "$OUT/loadgen.out"
grep -q "^verified " "$OUT/loadgen.out"

# Convergence: r2's own stats line reports handoff-applied records received
# from the survivors' streamers (hint interval is 500ms; allow up to 20s).
for _ in $(seq 1 40); do
  if grep -Eq "handoff=[1-9]" "$OUT/r2.log"; then
    echo "chaos: restarted rack converged via handoff"
    echo "chaos smoke passed"
    exit 0
  fi
  sleep 0.5
done
echo "chaos: restarted rack never applied a handoff record" >&2
tail -n 3 "$OUT"/r0.log "$OUT"/r1.log "$OUT"/r2.log >&2
exit 1
