#!/usr/bin/env bash
# chaos_smoke.sh — scenario smoke matrix + 3-rack R=2 replication chaos smoke.
#
# Phase 1 (scenario matrix): for each workload preset shared with the
# experiment suite (internal/experiments/cluster, docs/EXPERIMENTS.md), start
# three fresh replicated bottlerack processes and drive them over TCP with
# `loadgen -scenario <name> -verify-counts -verify-replies`: every bottle
# racked, counters exact at R=2, every acknowledged reply drained back.
#
# Phase 2 (invariant checker): `benchtables -cluster all` replays the same
# presets in-process against a 3-rack R=2 ring with the end-to-end invariant
# checker (exactly-once evaluation per matcher, no reply loss or cross-client
# leakage, adversaries defeated) and exits nonzero on any violation.
#
# Phase 3 (kill-one-rack under churn): three replicated racks again, loadgen
# under the churn scenario (clients connect and disconnect on an msn mobility
# timeline), one rack SIGKILLed mid-load and restarted; asserts:
#
#   1. loadgen finishes clean: every bottle racked and — via -verify-replies —
#      every acknowledged reply (matched friending) drained back. R=2 keeps
#      the cluster fully serving through the crash.
#   2. The restarted rack converges via hinted handoff: the survivors stream
#      their queued hints to it and its handoff-applied counter goes nonzero.
#
# Phase 4 (secured chaos): the same three racks run with TLS + mutual TLS +
# capability tokens (`sealedbottle certgen/keygen/token`), loadgen drives them
# with a client certificate and a token, one rack is SIGKILLed mid-load and
# restarted; asserts the authenticated cluster loses zero acknowledged replies
# and that the restarted rack converges via the mTLS-dialed, replica-scope-
# token-authenticated handoff stream.
#
# Phase 5 (drain under load): three replicated racks, loadgen mid-flight, one
# rack put into drain mode with `sealedbottle admin drain`. The drained rack
# answers new submits with the typed ErrDraining — which the ring reroutes to
# the surviving replica, queueing a hint — while its sweeps, replies and
# replica stream keep serving. Asserts loadgen finishes with -verify-replies
# clean (zero acknowledged replies lost across the drain) and that the rack
# reports draining over its admin status.
#
# Run from the repository root:  ./scripts/chaos_smoke.sh
set -euo pipefail

BIN=${BIN:-$(mktemp -d)}
OUT=${OUT:-$BIN}
BOTTLES=${BOTTLES:-20000}
MATRIX_BOTTLES=${MATRIX_BOTTLES:-4000}
SCENARIOS=${SCENARIOS:-"burst adversarial zipf lossy"}

go build -o "$BIN/bottlerack" ./cmd/bottlerack
go build -o "$BIN/loadgen" ./cmd/loadgen
go build -o "$BIN/benchtables" ./cmd/benchtables
go build -o "$BIN/sealedbottle" ./cmd/sealedbottle

P0=7127 P1=7128 P2=7129
ADDRS="127.0.0.1:$P0,127.0.0.1:$P1,127.0.0.1:$P2"
PEERS="r0=127.0.0.1:$P0,r1=127.0.0.1:$P1,r2=127.0.0.1:$P2"
PID0= PID1= PID2=

start_rack() { # name port -> pid
  "$BIN/bottlerack" -addr "127.0.0.1:$2" -tag "$1" \
    -replicate -self "$1" -peers "$PEERS" -hint-interval 500ms \
    -stats 1s >>"$OUT/$1.log" 2>&1 &
  echo $!
}

wait_port() {
  for _ in $(seq 1 50); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then exec 3>&-; return 0; fi
    sleep 0.2
  done
  echo "chaos: rack on port $1 never came up" >&2
  return 1
}

wait_port_free() {
  for _ in $(seq 1 50); do
    if ! (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then return 0; fi
    exec 3>&-
    sleep 0.2
  done
  echo "chaos: rack on port $1 never released its listener" >&2
  return 1
}

start_cluster() {
  PID0=$(start_rack r0 $P0)
  PID1=$(start_rack r1 $P1)
  PID2=$(start_rack r2 $P2)
  wait_port $P0 && wait_port $P1 && wait_port $P2
}

stop_cluster() {
  kill "$PID0" "$PID1" "$PID2" 2>/dev/null || true
  wait_port_free $P0 && wait_port_free $P1 && wait_port_free $P2
}

trap 'kill "$PID0" "$PID1" "$PID2" 2>/dev/null || true' EXIT

# ---- Phase 1: scenario matrix over TCP --------------------------------------
for scenario in $SCENARIOS; do
  : >"$OUT/r0.log"; : >"$OUT/r1.log"; : >"$OUT/r2.log"
  start_cluster
  echo "chaos: scenario matrix — $scenario"
  if ! "$BIN/loadgen" -addrs "$ADDRS" \
      -bottles "$MATRIX_BOTTLES" -batch 16 -submitters 4 -sweepers 2 \
      -replication 2 -scenario "$scenario" \
      -verify-counts -verify-replies >"$OUT/loadgen-$scenario.out" 2>&1; then
    echo "chaos: scenario $scenario failed" >&2
    cat "$OUT/loadgen-$scenario.out" >&2
    exit 1
  fi
  grep -q "^verified " "$OUT/loadgen-$scenario.out"
  stop_cluster
done
echo "chaos: scenario matrix passed ($SCENARIOS)"

# ---- Phase 2: in-process invariant checker over every preset ----------------
echo "chaos: invariant checker — benchtables -cluster all"
if ! "$BIN/benchtables" -cluster all >"$OUT/invariants.out" 2>&1; then
  echo "chaos: cluster scenarios violated invariants" >&2
  cat "$OUT/invariants.out" >&2
  exit 1
fi
if grep -q "^VIOLATION" "$OUT/invariants.out"; then
  echo "chaos: invariant violations reported" >&2
  grep "^VIOLATION" "$OUT/invariants.out" >&2
  exit 1
fi
echo "chaos: invariant checker passed on every preset"

# ---- Phase 3: kill-one-rack under churn -------------------------------------
: >"$OUT/r0.log"; : >"$OUT/r1.log"; : >"$OUT/r2.log"
start_cluster

"$BIN/loadgen" -addrs "$ADDRS" \
  -bottles "$BOTTLES" -batch 32 -submitters 4 -sweepers 2 \
  -replication 2 -scenario churn -verify-replies >"$OUT/loadgen.out" 2>&1 &
LG=$!

sleep 2
# The kill must land mid-load or the run proved nothing.
if ! kill -0 "$LG" 2>/dev/null; then
  echo "chaos: loadgen finished before the kill — raise BOTTLES" >&2
  cat "$OUT/loadgen.out" >&2
  exit 1
fi
kill -9 "$PID2"
echo "chaos: SIGKILLed rack r2 mid-load (churn scenario)"

# Survivors queue hints for r2 while the ring fails over; then r2 returns
# empty (in-memory rack) and must converge from its peers' hint streams.
sleep 2
PID2=$(start_rack r2 $P2)
wait_port $P2
echo "chaos: restarted rack r2"

if ! wait "$LG"; then
  echo "chaos: loadgen failed — friendings or bottles were lost" >&2
  cat "$OUT/loadgen.out" >&2
  exit 1
fi
cat "$OUT/loadgen.out"
grep -q "^verified " "$OUT/loadgen.out"

# Convergence: r2's own stats line reports handoff-applied records received
# from the survivors' streamers (hint interval is 500ms; allow up to 20s).
wait_handoff() {
  for _ in $(seq 1 40); do
    if grep -Eq "handoff=[1-9]" "$OUT/r2.log"; then return 0; fi
    sleep 0.5
  done
  echo "chaos: restarted rack never applied a handoff record" >&2
  tail -n 3 "$OUT"/r0.log "$OUT"/r1.log "$OUT"/r2.log >&2
  return 1
}
wait_handoff
echo "chaos: restarted rack converged via handoff"
stop_cluster

# ---- Phase 4: secured chaos (TLS + mTLS + capability tokens) ----------------
PKI="$OUT/pki"
"$BIN/sealedbottle" certgen -dir "$PKI" -name rack
"$BIN/sealedbottle" certgen -dir "$PKI" -name client -ca-cert "$PKI/ca.pem" -ca-key "$PKI/ca-key.pem"
"$BIN/sealedbottle" keygen -out "$OUT/cluster.key"
AUTH_KEY=$(cat "$OUT/cluster.key")
# A ring at R=2 queues handoff hints client-side, so the workload token needs
# the full scope (including replica), not just the client ops.
"$BIN/sealedbottle" token -key "$AUTH_KEY" -identity chaos-loadgen -ops all -ttl 1h \
  -out "$OUT/loadgen.tok"

start_secure_rack() { # name port -> pid
  "$BIN/bottlerack" -addr "127.0.0.1:$2" -tag "$1" \
    -replicate -self "$1" -peers "$PEERS" -hint-interval 500ms \
    -tls-cert "$PKI/rack.pem" -tls-key "$PKI/rack-key.pem" -tls-client-ca "$PKI/ca.pem" \
    -auth-key "$AUTH_KEY" \
    -stats 1s >>"$OUT/$1.log" 2>&1 &
  echo $!
}

: >"$OUT/r0.log"; : >"$OUT/r1.log"; : >"$OUT/r2.log"
PID0=$(start_secure_rack r0 $P0)
PID1=$(start_secure_rack r1 $P1)
PID2=$(start_secure_rack r2 $P2)
wait_port $P0 && wait_port $P1 && wait_port $P2
echo "chaos: secured cluster up (mTLS + tokens + per-identity admission)"

"$BIN/loadgen" -addrs "$ADDRS" \
  -bottles "$BOTTLES" -batch 32 -submitters 4 -sweepers 2 \
  -replication 2 -verify-replies \
  -tls-ca "$PKI/ca.pem" -tls-cert "$PKI/client.pem" -tls-key "$PKI/client-key.pem" \
  -token "@$OUT/loadgen.tok" >"$OUT/loadgen-tls.out" 2>&1 &
LG=$!

sleep 2
if ! kill -0 "$LG" 2>/dev/null; then
  echo "chaos: secured loadgen finished before the kill — raise BOTTLES" >&2
  cat "$OUT/loadgen-tls.out" >&2
  exit 1
fi
kill -9 "$PID2"
echo "chaos: SIGKILLed secured rack r2 mid-load"

sleep 2
PID2=$(start_secure_rack r2 $P2)
wait_port $P2
echo "chaos: restarted secured rack r2"

if ! wait "$LG"; then
  echo "chaos: secured loadgen failed — friendings or bottles were lost" >&2
  cat "$OUT/loadgen-tls.out" >&2
  exit 1
fi
cat "$OUT/loadgen-tls.out"
grep -q "^verified " "$OUT/loadgen-tls.out"
wait_handoff
echo "chaos: restarted secured rack converged via authenticated handoff"
stop_cluster

# ---- Phase 5: drain one rack under load -------------------------------------
: >"$OUT/r0.log"; : >"$OUT/r1.log"; : >"$OUT/r2.log"
start_cluster

"$BIN/loadgen" -addrs "$ADDRS" \
  -bottles "$BOTTLES" -batch 32 -submitters 4 -sweepers 2 \
  -replication 2 -verify-replies >"$OUT/loadgen-drain.out" 2>&1 &
LG=$!

sleep 2
if ! kill -0 "$LG" 2>/dev/null; then
  echo "chaos: loadgen finished before the drain — raise BOTTLES" >&2
  cat "$OUT/loadgen-drain.out" >&2
  exit 1
fi
"$BIN/sealedbottle" admin drain -addr "127.0.0.1:$P2" | tee "$OUT/drain.out"
grep -q "draining=true" "$OUT/drain.out"
echo "chaos: rack r2 draining mid-load (submits rerouted, reads still serving)"

if ! wait "$LG"; then
  echo "chaos: loadgen failed across the drain — acknowledged replies were lost" >&2
  cat "$OUT/loadgen-drain.out" >&2
  exit 1
fi
cat "$OUT/loadgen-drain.out"
grep -q "^verified " "$OUT/loadgen-drain.out"
"$BIN/sealedbottle" admin undrain -addr "127.0.0.1:$P2" >/dev/null
echo "chaos: drain under load lost zero acknowledged replies"
echo "chaos smoke passed"
