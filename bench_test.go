package sealedbottle

// Repository-level benchmarks: one benchmark per table and figure of the
// paper's evaluation, plus the ablations called out in DESIGN.md and the
// micro-operations of Tables IV-V as plain testing.B benchmarks. Run with
//
//	go test -bench=. -benchmem
//
// The table/figure benchmarks report the time to regenerate the whole
// artefact at a reduced (CI-friendly) scale; cmd/benchtables produces the
// full renderings.

import (
	"context"
	"crypto/rand"
	"fmt"
	"net"
	"sync/atomic"
	"testing"

	"sealedbottle/internal/attr"
	"sealedbottle/internal/baseline/dotproduct"
	"sealedbottle/internal/baseline/fc10"
	"sealedbottle/internal/baseline/findu"
	"sealedbottle/internal/baseline/fnp"
	"sealedbottle/internal/broker"
	"sealedbottle/internal/broker/transport"
	"sealedbottle/internal/broker/wal"
	"sealedbottle/internal/client"
	"sealedbottle/internal/core"
	"sealedbottle/internal/crypt"
	"sealedbottle/internal/experiments"
)

// benchConfig keeps the table/figure benchmarks at a CI-friendly scale.
func benchConfig() experiments.Config {
	return experiments.Config{
		CorpusUsers:       2000,
		Seed:              1,
		Initiators:        5,
		PoolUsers:         200,
		SampleUsers:       200,
		MeasureIterations: 200,
	}
}

// --- Tables -----------------------------------------------------------------

func BenchmarkTable1PrivacyLevelsHBC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiments.TableI(); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2PrivacyLevelsMalicious(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiments.TableII(); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable3AsymptoticComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiments.TableIII(); len(tbl.Rows) != 4 {
			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkTable4SymmetricOps(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.TableIV(cfg); len(tbl.Rows) != 6 {
			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkTable5AsymmetricOps(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.TableV(cfg); len(tbl.Rows) != 4 {
			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkTable6DecomposedTimes(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.TableVI(cfg); len(tbl.Rows) != 5 {
			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkTable7TypicalScenario(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.TableVII(cfg); len(tbl.Rows) != 4 {
			b.Fatal("unexpected table shape")
		}
	}
}

// --- Figures ----------------------------------------------------------------

func BenchmarkFigure4ProfileUniqueness(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if s := experiments.Figure4(cfg); len(s.X) == 0 {
			b.Fatal("empty series")
		}
	}
}

func BenchmarkFigure5AttributeDistribution(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if s := experiments.Figure5(cfg); len(s.X) == 0 {
			b.Fatal("empty series")
		}
	}
}

func BenchmarkFigure6CandidateProportionSixAttrs(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if s := experiments.Figure6(cfg, experiments.CaseSixAttributes); len(s.X) == 0 {
			b.Fatal("empty series")
		}
	}
}

func BenchmarkFigure6CandidateProportionDiverse(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if s := experiments.Figure6(cfg, experiments.CaseDiverse); len(s.X) == 0 {
			b.Fatal("empty series")
		}
	}
}

func BenchmarkFigure7CandidateKeySetSixAttrs(b *testing.B) {
	cfg := benchConfig()
	cfg.PoolUsers = 80
	cfg.Initiators = 2
	for i := 0; i < b.N; i++ {
		if s := experiments.Figure7(cfg, experiments.CaseSixAttributes); len(s.X) == 0 {
			b.Fatal("empty series")
		}
	}
}

func BenchmarkFigure7CandidateKeySetDiverse(b *testing.B) {
	cfg := benchConfig()
	cfg.PoolUsers = 80
	cfg.Initiators = 2
	for i := 0; i < b.N; i++ {
		if s := experiments.Figure7(cfg, experiments.CaseDiverse); len(s.X) == 0 {
			b.Fatal("empty series")
		}
	}
}

// --- Ablations --------------------------------------------------------------

func BenchmarkAblationRemainderPrime(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.AblationRemainder(cfg); len(tbl.Rows) != 4 {
			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkAblationVerifiability(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.AblationVerifiability(cfg); len(tbl.Rows) != 2 {
			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkAblationLocationBinding(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if tbl := experiments.AblationLocationBinding(cfg); len(tbl.Rows) != 2 {
			b.Fatal("unexpected table shape")
		}
	}
}

// --- Core protocol micro-benchmarks (the paper's headline numbers) ----------

func benchSpec() core.RequestSpec {
	return core.RequestSpec{
		Necessary: []attr.Attribute{
			attr.MustNew("sex", "male"),
			attr.MustNew("university", "columbia"),
		},
		Optional: []attr.Attribute{
			attr.MustNew("interest", "basketball"),
			attr.MustNew("interest", "chess"),
			attr.MustNew("interest", "golf"),
			attr.MustNew("interest", "tennis"),
		},
		MinOptional: 2,
	}
}

// BenchmarkRequestGeneration is the paper's "generate a friending request"
// cost (≈1.3 ms on the 2011 handset, ≈0.04 ms on its laptop).
func BenchmarkRequestGeneration(b *testing.B) {
	spec := benchSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildRequest(spec, core.BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNonCandidateProcessing is the per-request cost for a user excluded
// by the remainder-vector fast check (≈0.63 ms on the paper's handset).
func BenchmarkNonCandidateProcessing(b *testing.B) {
	built, err := core.BuildRequest(benchSpec(), core.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	matcher, err := core.NewMatcher(attr.NewProfile(
		attr.MustNew("interest", "gardening"),
		attr.MustNew("interest", "astronomy"),
		attr.MustNew("profession", "chef"),
		attr.MustNew("city", "lyon"),
		attr.MustNew("sex", "female"),
		attr.MustNew("interest", "opera"),
	), core.MatcherConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := matcher.CandidateKeys(built.Package); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCandidateProcessing is the per-request cost for a candidate user
// that must enumerate keys and attempt decryption (≈7 ms on the handset).
func BenchmarkCandidateProcessing(b *testing.B) {
	built, err := core.BuildRequest(benchSpec(), core.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	matcher, err := core.NewMatcher(attr.NewProfile(
		attr.MustNew("sex", "male"),
		attr.MustNew("university", "columbia"),
		attr.MustNew("interest", "basketball"),
		attr.MustNew("interest", "chess"),
		attr.MustNew("interest", "cooking"),
		attr.MustNew("interest", "hiking"),
	), core.MatcherConfig{AllowCollisionSkip: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := matcher.TryUnseal(built.Package); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileKeyGeneration isolates hashing a 6-attribute profile into
// its profile key.
func BenchmarkProfileKeyGeneration(b *testing.B) {
	profile := attr.NewProfile(benchSpec().Necessary...)
	for _, a := range benchSpec().Optional {
		profile.Add(a)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v, err := crypt.VectorFromProfile(profile)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := v.Key(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Baseline comparison benchmarks (Table VII, measured end to end) --------

func baselineSets() (client, server []string) {
	client = []string{"tag:a", "tag:b", "tag:c", "tag:d", "tag:e", "tag:f"}
	server = []string{"tag:d", "tag:e", "tag:f", "tag:g", "tag:h", "tag:i"}
	return client, server
}

func BenchmarkBaselineFNP(b *testing.B) {
	client, server := baselineSets()
	for i := 0; i < b.N; i++ {
		if _, err := fnp.Run(rand.Reader, 512, client, server); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineFC10(b *testing.B) {
	client, server := baselineSets()
	for i := 0; i < b.N; i++ {
		if _, err := fc10.Run(rand.Reader, 1024, client, server); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineFindUPSI(b *testing.B) {
	client, server := baselineSets()
	group, err := findu.NewGroup(rand.Reader, 512)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := findu.PSI(rand.Reader, group, client, server); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineDotProduct(b *testing.B) {
	alice := []int64{3, 1, 4, 1, 5, 9}
	bob := []int64{2, 7, 1, 8, 2, 8}
	for i := 0; i < b.N; i++ {
		if _, err := dotproduct.Run(rand.Reader, 512, alice, bob); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Bottle-rack broker benchmarks ---------------------------------------
//
// These track the rendezvous subsystem's perf trajectory: submit throughput
// vs shard count (contention), and sweep cost vs shard count and rack size.

// benchRawBottles pre-marshals n wire-distinct request packages by cloning
// one built request and re-stamping its ID, so benchmark loops measure broker
// cost rather than request-generation crypto.
func benchRawBottles(b *testing.B, n int) [][]byte {
	b.Helper()
	built, err := core.BuildRequest(benchSpec(), core.BuildOptions{Origin: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	out := make([][]byte, n)
	for i := range out {
		pkg := built.Package.Clone()
		pkg.ID = fmt.Sprintf("%032x", i)
		if out[i], err = pkg.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
	return out
}

// benchSweeperResidues builds the residue set of a profile that passes the
// benchSpec prefilter, so sweeps pay the full screen-and-return path.
func benchSweeperResidues(b *testing.B) []core.ResidueSet {
	b.Helper()
	matcher, err := core.NewMatcher(attr.NewProfile(
		attr.MustNew("sex", "male"),
		attr.MustNew("university", "columbia"),
		attr.MustNew("interest", "basketball"),
		attr.MustNew("interest", "chess"),
	), core.MatcherConfig{})
	if err != nil {
		b.Fatal(err)
	}
	return []core.ResidueSet{matcher.ResidueSet(core.DefaultPrime)}
}

// BenchmarkBrokerSubmit measures racked submissions per second as the shard
// count grows (parallel submitters contend on shard mutexes).
func BenchmarkBrokerSubmit(b *testing.B) {
	for _, shards := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			rack := broker.New(broker.Config{Shards: shards, ReapInterval: -1})
			defer rack.Close()
			raws := benchRawBottles(b, b.N)
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := next.Add(1) - 1
					if _, err := rack.Submit(context.Background(), raws[i]); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkBrokerSweepShards measures sweep latency over a fixed-size rack as
// the shard count grows — the worker pool fans one query across shards.
func BenchmarkBrokerSweepShards(b *testing.B) {
	const rackSize = 4096
	for _, shards := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			rack := broker.New(broker.Config{Shards: shards, ReapInterval: -1})
			defer rack.Close()
			for _, raw := range benchRawBottles(b, rackSize) {
				if _, err := rack.Submit(context.Background(), raw); err != nil {
					b.Fatal(err)
				}
			}
			residues := benchSweeperResidues(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rack.Sweep(context.Background(), broker.SweepQuery{Residues: residues, Limit: 64}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRackSweep measures the steady-state sweep shape: a large rack
// where far more bottles pass the prefilter than the query limit admits.
// Every bottle here passes, so the sweep's cost is pure collection — the
// case the shared whole-rack collection budget exists for. Before it, each
// of the 64 shards collected up to the full limit and the merge threw all
// but `limit` away (shards×limit collected bottles per sweep); now shards
// stop scanning as soon as the shared budget is spent, so small-limit sweeps
// over big racks no longer pay for the rack's size. Compare limit=16 against
// limit=unbounded (which must still scan everything) to see the win.
func BenchmarkRackSweep(b *testing.B) {
	const rackSize = 32768
	rack := broker.New(broker.Config{Shards: 64, ReapInterval: -1})
	defer rack.Close()
	for _, raw := range benchRawBottles(b, rackSize) {
		if _, err := rack.Submit(context.Background(), raw); err != nil {
			b.Fatal(err)
		}
	}
	residues := benchSweeperResidues(b)
	for _, limit := range []int{16, 256, rackSize} {
		name := fmt.Sprintf("limit=%d", limit)
		if limit == rackSize {
			name = "limit=all"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := rack.Sweep(context.Background(), broker.SweepQuery{Residues: residues, Limit: limit})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Bottles) != limit {
					b.Fatalf("swept %d bottles, want %d", len(res.Bottles), limit)
				}
			}
		})
	}
}

// BenchmarkBrokerSweepRackSize measures how sweep cost scales with the number
// of racked bottles at a fixed shard count.
func BenchmarkBrokerSweepRackSize(b *testing.B) {
	for _, rackSize := range []int{1024, 8192, 32768} {
		b.Run(fmt.Sprintf("bottles=%d", rackSize), func(b *testing.B) {
			rack := broker.New(broker.Config{Shards: 32, ReapInterval: -1})
			defer rack.Close()
			for _, raw := range benchRawBottles(b, rackSize) {
				if _, err := rack.Submit(context.Background(), raw); err != nil {
					b.Fatal(err)
				}
			}
			residues := benchSweeperResidues(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rack.Sweep(context.Background(), broker.SweepQuery{Residues: residues, Limit: 64}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBrokerSubmitDurable measures racked submissions with the
// write-ahead log on, one sub-benchmark per fsync policy; hold against
// BenchmarkBrokerSubmit (the in-memory path) on the same shard count. The
// acceptance bar for the durability subsystem is fsync=interval within 2× of
// in-memory: the hot path adds one record encode and one channel send, while
// syncing rides the background timer. fsync=always pays a (group-committed)
// fsync per acknowledged operation and is expected to be disk-bound.
func BenchmarkBrokerSubmitDurable(b *testing.B) {
	for _, policy := range []wal.Policy{wal.PolicyNever, wal.PolicyInterval, wal.PolicyAlways} {
		b.Run("fsync="+policy.String(), func(b *testing.B) {
			rack, err := broker.Open(broker.Config{
				Shards:       64,
				ReapInterval: -1,
				Durability:   &broker.DurabilityConfig{Dir: b.TempDir(), Fsync: policy},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer rack.Close()
			raws := benchRawBottles(b, b.N)
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := next.Add(1) - 1
					if _, err := rack.Submit(context.Background(), raws[i]); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkBrokerSubmitBatchDurable measures the batched durable submit
// path: one group commit per 64-bottle batch, so even fsync=always amortizes
// its sync across the whole group.
func BenchmarkBrokerSubmitBatchDurable(b *testing.B) {
	const batch = 64
	for _, policy := range []wal.Policy{wal.PolicyInterval, wal.PolicyAlways} {
		b.Run("fsync="+policy.String(), func(b *testing.B) {
			rack, err := broker.Open(broker.Config{
				Shards:       64,
				ReapInterval: -1,
				Durability:   &broker.DurabilityConfig{Dir: b.TempDir(), Fsync: policy},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer rack.Close()
			raws := benchRawBottles(b, b.N)
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; {
				n := batch
				if b.N-done < n {
					n = b.N - done
				}
				results, err := rack.SubmitBatch(context.Background(), raws[done:done+n])
				if err != nil {
					b.Fatal(err)
				}
				for _, res := range results {
					if res.Err != nil {
						b.Fatal(res.Err)
					}
				}
				done += n
			}
		})
	}
}

// BenchmarkBrokerPrefilter isolates the residue-presence screen a sweep runs
// per racked bottle.
func BenchmarkBrokerPrefilter(b *testing.B) {
	built, err := core.BuildRequest(benchSpec(), core.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	rs := benchSweeperResidues(b)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		built.Package.PrefilterMatch(rs)
	}
}

// BenchmarkCodecRoundTrips measures the steady-state codec paths of the
// allocation-free hot path: the Append* encoders reuse caller scratch and the
// *View decoders alias the frame, so a warmed round trip allocates nothing.
// The budgets are pinned by TestCodecRoundTripAllocFree; this records them in
// the perf trajectory.
func BenchmarkCodecRoundTrips(b *testing.B) {
	raws := benchRawBottles(b, 3)
	res := broker.SweepResult{
		Bottles: []broker.SweptBottle{
			{ID: "bench-codec-1", Raw: raws[0]},
			{ID: "bench-codec-2", Raw: raws[1]},
			{ID: "bench-codec-3", Raw: raws[2]},
		},
		Scanned: 64,
	}
	b.Run("sweep-result", func(b *testing.B) {
		var buf []byte
		var view broker.SweepResultView
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = broker.AppendSweepResult(buf[:0], res)
			if err := broker.UnmarshalSweepResultView(buf, &view); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reply-post", func(b *testing.B) {
		var buf []byte
		var view broker.ReplyPostView
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = broker.AppendReplyPost(buf[:0], "bench-codec-1", raws[0])
			if err := broker.UnmarshalReplyPostView(buf, &view); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Transport benchmarks -------------------------------------------------
//
// These compare the two wire framings on ONE connection: the lock-step client
// serializes a full round trip per operation, while the multiplexed client
// keeps many requests in flight and the batch opcodes amortize the round trip
// across whole groups. They run over TCP loopback so the numbers include real
// socket behaviour.

// benchTransportRack serves a fresh rack over TCP loopback.
func benchTransportRack(b *testing.B) (addr string, cleanup func()) {
	b.Helper()
	rack := broker.New(broker.Config{Shards: 32, ReapInterval: -1})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rack.Close()
		b.Skipf("cannot listen on loopback: %v", err)
	}
	srv := transport.NewServer(rack)
	go srv.Serve(l)
	return l.Addr().String(), func() {
		l.Close()
		srv.Close()
		rack.Close()
	}
}

// benchSubmitThroughput drives b.N pre-marshalled submissions through one
// courier from many goroutines; with Conns=1 every request rides the same
// connection, so the framing alone decides how many can be in flight.
func benchSubmitThroughput(b *testing.B, legacy bool) {
	addr, cleanup := benchTransportRack(b)
	defer cleanup()
	courier, err := client.Dial(client.Config{Addr: addr, Conns: 1, Legacy: legacy})
	if err != nil {
		b.Fatal(err)
	}
	defer courier.Close()
	raws := benchRawBottles(b, b.N)
	var next atomic.Int64
	b.SetParallelism(32) // deep in-flight pipeline on the single connection
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1) - 1
			if _, err := courier.Submit(context.Background(), raws[i]); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkTransportSubmitLockstep is the old framing: one round trip at a
// time per connection.
func BenchmarkTransportSubmitLockstep(b *testing.B) { benchSubmitThroughput(b, true) }

// BenchmarkTransportSubmitPipelined is the multiplexed framing on the same
// single connection; the acceptance bar for the refactor is ≥2× the lock-step
// submit throughput.
func BenchmarkTransportSubmitPipelined(b *testing.B) { benchSubmitThroughput(b, false) }

// BenchmarkTransportSubmitBatched adds the SubmitBatch opcode on top of the
// multiplexed framing: one round trip and one shard-lock acquisition per
// group of 64.
func BenchmarkTransportSubmitBatched(b *testing.B) {
	const batch = 64
	addr, cleanup := benchTransportRack(b)
	defer cleanup()
	courier, err := client.Dial(client.Config{Addr: addr, Conns: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer courier.Close()
	raws := benchRawBottles(b, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := batch
		if b.N-done < n {
			n = b.N - done
		}
		results, err := courier.SubmitBatch(context.Background(), raws[done:done+n])
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range results {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
		done += n
	}
}

// BenchmarkSealedBottleEndToEnd runs a full Protocol 1 exchange (request,
// candidate processing, reply, reply verification) — the number to hold
// against the baseline benchmarks above.
func BenchmarkSealedBottleEndToEnd(b *testing.B) {
	spec := benchSpec()
	profile := attr.NewProfile(
		attr.MustNew("sex", "male"),
		attr.MustNew("university", "columbia"),
		attr.MustNew("interest", "basketball"),
		attr.MustNew("interest", "chess"),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		init, err := core.NewInitiator(spec, core.InitiatorConfig{Protocol: core.Protocol1, Origin: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		participant, err := core.NewParticipant(profile, core.ParticipantConfig{
			ID:      "peer",
			Matcher: core.MatcherConfig{AllowCollisionSkip: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := participant.HandleRequest(init.Request())
		if err != nil {
			b.Fatal(err)
		}
		if res.Reply == nil {
			b.Fatal("expected a reply")
		}
		if m, reject, err := init.ProcessReply(res.Reply); err != nil || reject != core.RejectNone || m == nil {
			b.Fatalf("reply rejected: %v %v", reject, err)
		}
	}
}

// BenchmarkRingSubmitReplicated measures what R-way replication costs a
// submit over in-process racks: R=1 is the single-placement baseline, R=2
// pays one extra rack write plus the fan-out bookkeeping. BENCH_6.json
// records the pair as the replication overhead trajectory.
func BenchmarkRingSubmitReplicated(b *testing.B) {
	for _, rf := range []int{1, 2} {
		b.Run(fmt.Sprintf("R=%d", rf), func(b *testing.B) {
			cfg := client.RingConfig{ProbeInterval: -1, Replication: rf}
			var racks []*broker.Rack
			for i := 0; i < 3; i++ {
				rack := broker.New(broker.Config{Shards: 8, ReapInterval: -1, RackTag: fmt.Sprintf("r%d", i)})
				racks = append(racks, rack)
				cfg.Backends = append(cfg.Backends, client.RingBackend{Name: fmt.Sprintf("rack-%d", i), Backend: rack})
			}
			defer func() {
				for _, r := range racks {
					r.Close()
				}
			}()
			ring, err := client.NewRing(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer ring.Close()
			raws := benchRawBottles(b, b.N)
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := next.Add(1) - 1
					if _, err := ring.Submit(context.Background(), raws[i]); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
