module sealedbottle

go 1.24
