# Build the sealed-bottle broker and tooling. Multi-stage: the final image
# carries only static binaries, so it runs on a bare base image.
FROM golang:1.24-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags='-s -w' -o /out/ \
    ./cmd/bottlerack ./cmd/sealedbottle ./cmd/loadgen

FROM alpine:3.20
# wget/curl-free health probes go through the ops endpoint with busybox wget.
COPY --from=build /out/bottlerack /out/sealedbottle /out/loadgen /usr/local/bin/
VOLUME /data
EXPOSE 7117 9117
ENTRYPOINT ["bottlerack"]
CMD ["-addr", ":7117", "-ops-addr", ":9117"]
