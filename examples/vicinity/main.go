// Vicinity search: location-privacy-preserving "who is near me" matching
// (Section III-D of the paper). The initiator hashes its vicinity onto a
// hexagonal lattice and issues a fuzzy request over the lattice points; only
// users whose own vicinity overlaps enough can reconstruct the key, and
// nobody ever transmits coordinates.
package main

import (
	"fmt"
	"log"

	"sealedbottle/internal/attr"
	"sealedbottle/internal/core"
	"sealedbottle/internal/lattice"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// All participants agree on the public lattice parameters (origin and
	// cell size), just like they agree on the hash function. The paper notes
	// that the initiator picks the cell size d so the vicinity point set
	// stays small; D = 2d here gives a 19-point set like Fig. 3.
	grid, err := lattice.New(lattice.Point{}, 75) // 75 m cells
	if err != nil {
		return err
	}

	// The initiator is at a café and searches within 150 m, requiring that a
	// match shares at least 60% of its vicinity lattice points.
	initiatorLoc := lattice.Point{X: 480, Y: 1210}
	const searchRange = 150.0
	const theta = 0.6
	attrs, minOptional := grid.VicinityAttributes(initiatorLoc, searchRange, theta)
	fmt.Printf("initiator vicinity: %d lattice points, threshold Θ=%.2f → β=%d\n",
		len(attrs), theta, minOptional)

	spec := core.FuzzyMatch(minOptional, attrs...)
	// Lattice points are a small public space anyway, so a larger remainder
	// prime costs nothing in dictionary hardness and keeps candidate
	// enumeration cheap for the many-attribute location vectors.
	spec.Prime = 97
	init, err := core.NewInitiator(spec, core.InitiatorConfig{
		Protocol: core.Protocol1,
		Origin:   "cafe-goer",
		Note:     []byte("anyone around for a pickup game?"),
	})
	if err != nil {
		return err
	}
	pkg := init.Request()
	size, err := pkg.WireSize()
	if err != nil {
		return err
	}
	fmt.Printf("request: %d bytes on the wire, %d remainders, no coordinates\n\n", size, pkg.AttributeCount())

	// Three other users at increasing distances answer the same broadcast.
	people := []struct {
		name string
		loc  lattice.Point
	}{
		{"neighbour (60 m away)", lattice.Point{X: 530, Y: 1240}},
		{"down the street (300 m away)", lattice.Point{X: 700, Y: 1400}},
		{"across town (5 km away)", lattice.Point{X: 5000, Y: 2000}},
	}
	for _, person := range people {
		ownAttrs, _ := grid.VicinityAttributes(person.loc, searchRange, theta)
		profile := attr.NewProfile(ownAttrs...)
		participant, err := core.NewParticipant(profile, core.ParticipantConfig{
			ID:      person.name,
			Matcher: core.MatcherConfig{MaxCandidateVectors: 65536, AllowCollisionSkip: true},
		})
		if err != nil {
			return err
		}
		res, err := participant.HandleRequest(pkg)
		if err != nil {
			return err
		}
		overlap := lattice.VicinityRatio(
			grid.Vicinity(initiatorLoc, searchRange),
			grid.Vicinity(person.loc, searchRange),
		)
		fmt.Printf("%-30s vicinity overlap %.2f → matched=%v\n", person.name, overlap, res.Matched)
		if res.Matched {
			if m, reject, err := init.ProcessReply(res.Reply); err == nil && reject == core.RejectNone {
				fmt.Printf("%-30s secure channel established (%v)\n", "", m.ChannelKey)
			}
		}
	}

	fmt.Println("\nthe across-town user could not reconstruct the key: the initiator's location stays private,")
	fmt.Println("and the initiator only learns about users who are genuinely nearby.")
	return nil
}
