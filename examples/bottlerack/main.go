// Bottlerack: the store-and-forward rendezvous flow end to end over the real
// framed transport, driven entirely through the public sealedbottle SDK.
// A rack server runs behind the in-memory pipe listener; Alice's courier
// submits a sealed-bottle request over a multiplexed connection; Bob's and
// Carol's sweepers screen the rack with their residue presence sets — the
// broker dismisses Carol's non-matching profile with the remainder prefilter
// before any cryptography — Bob's sweeper verifies locally and posts a reply,
// and Alice fetches it and derives the shared channel key. The broker never
// sees anything but public packages and residues.
package main

import (
	"context"
	"fmt"
	"log"
	"net"

	"sealedbottle"
	"sealedbottle/internal/attr"
	"sealedbottle/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Stand up the rack, serve it over the framed protocol, and connect
	// one courier that every party shares (its pooled multiplexed connection
	// carries all their calls).
	ctx := context.Background()
	rack := sealedbottle.NewRack(sealedbottle.RackConfig{Shards: 8})
	defer rack.Close()
	l := sealedbottle.ListenPipe()
	defer l.Close()
	srv := sealedbottle.NewServer(rack)
	go srv.Serve(l)
	defer srv.Close()

	courier, err := sealedbottle.Dial(sealedbottle.CourierConfig{Dialer: func() (net.Conn, error) { return l.Dial() }})
	if err != nil {
		return err
	}
	defer courier.Close()

	// 2. Alice seals her search and racks the bottle.
	spec := core.RequestSpec{
		Necessary: []attr.Attribute{attr.MustNew("university", "Columbia")},
		Optional: []attr.Attribute{
			attr.MustNew("interest", "basketball"),
			attr.MustNew("interest", "chess"),
			attr.MustNew("interest", "golf"),
		},
		MinOptional: 2,
	}
	alice, err := core.NewInitiator(spec, core.InitiatorConfig{Protocol: core.Protocol1, Origin: "alice"})
	if err != nil {
		return err
	}
	raw, err := alice.Request().Marshal()
	if err != nil {
		return err
	}
	reqID, err := courier.Submit(ctx, raw)
	if err != nil {
		return err
	}
	fmt.Printf("alice racked bottle %s…\n", reqID[:8])

	// 3. Bob and Carol sweep through the SDK's sweeper: it sends only
	// residues mod p — never hashes — and evaluates whatever passes the
	// broker's prefilter with the full participant machinery, posting replies
	// automatically.
	sweep := func(name string, profile *attr.Profile) error {
		part, err := core.NewParticipant(profile, core.ParticipantConfig{
			ID:      name,
			Matcher: core.MatcherConfig{AllowCollisionSkip: true},
		})
		if err != nil {
			return err
		}
		var matchedKey string
		sweeper, err := sealedbottle.NewSweeper(courier, sealedbottle.SweeperConfig{
			Participant: part,
			OnResult: func(pkg *core.RequestPackage, res *core.HandleResult) {
				if res.Matched {
					matchedKey = res.ChannelKey.String()
				}
			},
		})
		if err != nil {
			return err
		}
		st, err := sweeper.Tick(ctx)
		if err != nil {
			return err
		}
		if st.ReplyErrors > 0 {
			return fmt.Errorf("%s failed to post %d reply(ies)", name, st.ReplyErrors)
		}
		fmt.Printf("%s swept: %d bottle(s) passed the prefilter (%d screened, %d rejected)\n",
			name, st.Swept, st.Scanned, st.Rejected)
		if st.Replies > 0 {
			fmt.Printf("%s matched and posted a reply (channel key %s…)\n", name, matchedKey[:8])
		}
		return nil
	}
	if err := sweep("bob", attr.NewProfile(
		attr.MustNew("university", "Columbia"),
		attr.MustNew("interest", "basketball"),
		attr.MustNew("interest", "chess"),
		attr.MustNew("interest", "cooking"),
	)); err != nil {
		return err
	}
	if err := sweep("carol", attr.NewProfile(
		attr.MustNew("university", "MIT"),
		attr.MustNew("interest", "opera"),
		attr.MustNew("interest", "sailing"),
	)); err != nil {
		return err
	}

	// 4. Alice fetches her replies and confirms the match with x.
	raws, err := courier.Fetch(ctx, reqID)
	if err != nil {
		return err
	}
	for _, r := range raws {
		reply, err := core.UnmarshalReply(r)
		if err != nil {
			continue
		}
		m, reject, err := alice.ProcessReply(reply)
		if err != nil {
			return err
		}
		if m != nil {
			fmt.Printf("alice confirmed %s (channel key %s…)\n", m.Peer, m.ChannelKey.String()[:8])
		} else {
			fmt.Printf("alice rejected a reply: %s\n", reject)
		}
	}

	st, err := courier.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("rack stats: held=%d scanned=%d prefilter-reject=%.0f%% replies=%d/%d\n",
		st.Held, st.Totals.Scanned, 100*st.PrefilterRejectRate(),
		st.Totals.RepliesIn, st.Totals.RepliesOut)
	return nil
}
