// Bottlerack: the store-and-forward rendezvous flow end to end over the real
// framed transport. A rack server runs behind the in-memory pipe listener;
// Alice's client submits a sealed-bottle request; Bob and Carol sweep the
// rack with their residue presence sets — the broker dismisses Carol's
// non-matching profile with the remainder prefilter before any cryptography —
// Bob verifies locally, posts a reply, and Alice fetches it and derives the
// shared channel key. The broker never sees anything but public packages and
// residues.
package main

import (
	"fmt"
	"log"

	"sealedbottle/internal/attr"
	"sealedbottle/internal/broker"
	"sealedbottle/internal/broker/transport"
	"sealedbottle/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Stand up the rack and serve it over the framed protocol.
	rack := broker.New(broker.Config{Shards: 8})
	defer rack.Close()
	l := transport.ListenPipe()
	defer l.Close()
	srv := transport.NewServer(rack)
	go srv.Serve(l)
	defer srv.Close()

	dial := func() (*transport.Client, error) {
		conn, err := l.Dial()
		if err != nil {
			return nil, err
		}
		return transport.NewClient(conn), nil
	}

	// 2. Alice seals her search and racks the bottle.
	spec := core.RequestSpec{
		Necessary: []attr.Attribute{attr.MustNew("university", "Columbia")},
		Optional: []attr.Attribute{
			attr.MustNew("interest", "basketball"),
			attr.MustNew("interest", "chess"),
			attr.MustNew("interest", "golf"),
		},
		MinOptional: 2,
	}
	alice, err := core.NewInitiator(spec, core.InitiatorConfig{Protocol: core.Protocol1, Origin: "alice"})
	if err != nil {
		return err
	}
	raw, err := alice.Request().Marshal()
	if err != nil {
		return err
	}
	aliceClient, err := dial()
	if err != nil {
		return err
	}
	reqID, err := aliceClient.Submit(raw)
	if err != nil {
		return err
	}
	fmt.Printf("alice racked bottle %s…\n", reqID[:8])

	// 3. Bob and Carol sweep. Each sends only residues mod p — never hashes.
	sweep := func(name string, profile *attr.Profile) error {
		part, err := core.NewParticipant(profile, core.ParticipantConfig{
			ID:      name,
			Matcher: core.MatcherConfig{AllowCollisionSkip: true},
		})
		if err != nil {
			return err
		}
		c, err := dial()
		if err != nil {
			return err
		}
		res, err := c.Sweep(broker.SweepQuery{
			Residues: []core.ResidueSet{part.Matcher().ResidueSet(core.DefaultPrime)},
		})
		if err != nil {
			return err
		}
		fmt.Printf("%s swept: %d bottle(s) passed the prefilter (%d screened, %d rejected)\n",
			name, len(res.Bottles), res.Scanned, res.Rejected)
		for _, b := range res.Bottles {
			pkg, err := core.UnmarshalPackage(b.Raw)
			if err != nil {
				continue
			}
			hr, err := part.HandleRequest(pkg)
			if err != nil || hr.Reply == nil {
				continue
			}
			if err := c.Reply(pkg.ID, hr.Reply.Marshal()); err != nil {
				return err
			}
			fmt.Printf("%s matched and posted a reply (channel key %s…)\n", name, hr.ChannelKey.String()[:8])
		}
		return nil
	}
	if err := sweep("bob", attr.NewProfile(
		attr.MustNew("university", "Columbia"),
		attr.MustNew("interest", "basketball"),
		attr.MustNew("interest", "chess"),
		attr.MustNew("interest", "cooking"),
	)); err != nil {
		return err
	}
	if err := sweep("carol", attr.NewProfile(
		attr.MustNew("university", "MIT"),
		attr.MustNew("interest", "opera"),
		attr.MustNew("interest", "sailing"),
	)); err != nil {
		return err
	}

	// 4. Alice fetches her replies and confirms the match with x.
	raws, err := aliceClient.Fetch(reqID)
	if err != nil {
		return err
	}
	for _, r := range raws {
		reply, err := core.UnmarshalReply(r)
		if err != nil {
			continue
		}
		m, reject, err := alice.ProcessReply(reply)
		if err != nil {
			return err
		}
		if m != nil {
			fmt.Printf("alice confirmed %s (channel key %s…)\n", m.Peer, m.ChannelKey.String()[:8])
		} else {
			fmt.Printf("alice rejected a reply: %s\n", reject)
		}
	}

	st, err := aliceClient.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("rack stats: held=%d scanned=%d prefilter-reject=%.0f%% replies=%d/%d\n",
		st.Held, st.Totals.Scanned, 100*st.PrefilterRejectRate(),
		st.Totals.RepliesIn, st.Totals.RepliesOut)
	return nil
}
