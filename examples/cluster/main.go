// Cluster: the sealed-bottle rendezvous scaled out across three bottle
// racks behind a client-side Ring at replication factor 2 — the same flow
// as examples/bottlerack, with zero call-site changes on the protocol side.
// Three tagged racks run behind their own framed pipe servers, each wrapped
// as a replica node (hint queues + rack-to-rack handoff); the Ring places
// every one of Alice's bottles on its top-2 rendezvous racks, fans Bob's
// sweep out to every rack (merging the replica copies into one observation
// each), and steers his reply to all replicas of the bottle. Then one rack
// is killed to show what R=2 buys: the Ring ejects it after a few faults,
// every single bottle stays reachable on its surviving replica, and the
// survivors queue hints for the dead rack so it would converge by handoff
// on return.
package main

import (
	"context"
	"fmt"
	"log"
	"net"

	"sealedbottle"
	"sealedbottle/internal/attr"
	"sealedbottle/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// rackProc is one "process" of the demo cluster: a tagged rack wrapped as a
// replica node behind its own framed server and pipe listener, like one
// `cmd/bottlerack -replicate` instance.
type rackProc struct {
	node *sealedbottle.ReplicaNode
	l    *sealedbottle.PipeListener
	srv  *sealedbottle.Server
}

func (p *rackProc) stop() {
	p.l.Close()
	p.srv.Close()
	p.node.Close() // the node owns the rack
}

func run() error {
	// 1. Three tagged racks, each the in-process analogue of
	// `bottlerack -tag rN -replicate`, and a Ring of couriers over them at
	// R=2. The listeners exist up front so every node's handoff dialer can
	// reach any peer by name.
	ctx := context.Background()
	names := []string{"rack-0", "rack-1", "rack-2"}
	listeners := map[string]*sealedbottle.PipeListener{}
	peers := map[string]string{}
	for _, name := range names {
		listeners[name] = sealedbottle.ListenPipe()
		peers[name] = name
	}
	procs := make([]*rackProc, len(names))
	ringCfg := sealedbottle.RingConfig{ProbeInterval: -1, Replication: 2} // demo drives Probe itself
	for i, name := range names {
		rack := sealedbottle.NewRack(sealedbottle.RackConfig{Shards: 4, RackTag: fmt.Sprintf("r%d", i)})
		node := sealedbottle.WrapReplica(rack, sealedbottle.ReplicaConfig{
			Self:  name,
			Peers: peers,
			Dial: func(addr string) (sealedbottle.HandoffTarget, error) {
				return sealedbottle.Dial(sealedbottle.CourierConfig{
					Dialer: func() (net.Conn, error) { return listeners[addr].Dial() },
				})
			},
		})
		l := listeners[name]
		srv := sealedbottle.NewServer(rack, sealedbottle.ServerOptions{Replica: node})
		go srv.Serve(l)
		procs[i] = &rackProc{node: node, l: l, srv: srv}
		courier, err := sealedbottle.Dial(sealedbottle.CourierConfig{Dialer: func() (net.Conn, error) { return l.Dial() }})
		if err != nil {
			return err
		}
		defer courier.Close()
		ringCfg.Backends = append(ringCfg.Backends, sealedbottle.RingBackend{Name: name, Backend: courier})
	}
	defer func() {
		for _, p := range procs {
			p.stop()
		}
	}()
	ring, err := sealedbottle.NewRing(ringCfg)
	if err != nil {
		return err
	}
	defer ring.Close()

	// 2. Alice racks several search bottles; the ring places each on the
	// top-2 racks of its request ID's rendezvous order.
	spec := core.RequestSpec{
		Necessary: []attr.Attribute{attr.MustNew("university", "Columbia")},
		Optional: []attr.Attribute{
			attr.MustNew("interest", "basketball"),
			attr.MustNew("interest", "chess"),
			attr.MustNew("interest", "golf"),
		},
		MinOptional: 2,
	}
	initiators := map[string]*core.Initiator{} // tagged ID -> initiator
	perRack := map[string]int{}
	for i := 0; i < 6; i++ {
		alice, err := core.NewInitiator(spec, core.InitiatorConfig{Protocol: core.Protocol1, Origin: "alice"})
		if err != nil {
			return err
		}
		raw, err := alice.Request().Marshal()
		if err != nil {
			return err
		}
		id, err := ring.Submit(ctx, raw)
		if err != nil {
			return err
		}
		initiators[id] = alice
		tag, _ := sealedbottle.SplitTaggedID(id)
		perRack[tag]++
	}
	fmt.Printf("alice racked 6 bottles across the cluster (2 copies each): %v\n", perRack)

	// 3. Bob sweeps once through the ring: the query fans out to all three
	// racks, the merged result collapses each bottle's two replica copies
	// into one observation, and his replies route to every replica.
	bob, err := core.NewParticipant(attr.NewProfile(
		attr.MustNew("university", "Columbia"),
		attr.MustNew("interest", "basketball"),
		attr.MustNew("interest", "chess"),
		attr.MustNew("interest", "cooking"),
	), core.ParticipantConfig{ID: "bob", Matcher: core.MatcherConfig{AllowCollisionSkip: true}, MinReplyInterval: 1})
	if err != nil {
		return err
	}
	sweeper, err := sealedbottle.NewSweeper(ring, sealedbottle.SweeperConfig{Participant: bob})
	if err != nil {
		return err
	}
	st, err := sweeper.Tick(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("bob swept the whole cluster in one tick: %d bottles, %d replies posted, %d failed\n",
		st.Swept, st.Replies, st.ReplyErrors)

	// 4. Alice fetches her replies back through the ring — each fetch drains
	// every replica and merges, so a diverged replica would be read-repaired
	// here.
	confirmed := 0
	for id, alice := range initiators {
		for _, r := range sealedbottle.FetchMany(ctx, ring, []string{id})[0].Replies {
			reply, err := core.UnmarshalReply(r)
			if err != nil {
				continue
			}
			if m, _, err := alice.ProcessReply(reply); err == nil && m != nil {
				confirmed++
			}
		}
	}
	fmt.Printf("alice confirmed %d matches\n", confirmed)

	// 5. Kill rack 1. The ring ejects it after a few faults — and at R=2
	// nothing is lost: every bottle's other replica keeps serving, and each
	// operation that misses the dead rack queues a hint on a survivor, ready
	// to be streamed back rack-to-rack when rack-1 returns.
	procs[1].stop()
	for i := 0; i < sealedbottle.DefaultFailThreshold; i++ {
		ring.Probe(ctx)
		_, _ = ring.Sweep(ctx, sealedbottle.SweepQuery{Residues: []core.ResidueSet{
			bob.Matcher().ResidueSet(core.DefaultPrime),
		}})
	}
	for _, h := range ring.Health() {
		fmt.Printf("rack %s: down=%v\n", h.Name, h.Down)
	}
	reachable := 0
	for id := range initiators {
		if _, err := ring.Fetch(ctx, id); err == nil {
			reachable++
		}
	}
	fmt.Printf("all %d of %d bottles still reachable with rack-1 down (R=2)\n",
		reachable, len(initiators))

	// 6. Alice keeps racking with rack-1 down. Placement intent still names
	// rack-1 for some IDs — ejection is a health observation, not a placement
	// change — so the ring extends those writes to the next live rack and
	// queues a submit hint on a survivor, ready to stream rack-to-rack the
	// moment rack-1 returns (hinted handoff).
	for i := 0; i < 6; i++ {
		alice, err := core.NewInitiator(spec, core.InitiatorConfig{Protocol: core.Protocol1, Origin: "alice"})
		if err != nil {
			return err
		}
		raw, err := alice.Request().Marshal()
		if err != nil {
			return err
		}
		if _, err := ring.Submit(ctx, raw); err != nil {
			return err
		}
	}
	stats, err := ring.Stats(ctx)
	if err != nil {
		return err
	}
	hinted := procs[0].node.Pending() + procs[2].node.Pending()
	fmt.Printf("cluster stats (survivors): held=%d scanned=%d replies=%d/%d, %d hints queued for rack-1\n",
		stats.Held, stats.Totals.Scanned, stats.Totals.RepliesIn, stats.Totals.RepliesOut, hinted)
	return nil
}
