// Cluster: the sealed-bottle rendezvous scaled out across three bottle
// racks behind a client-side Ring — the same flow as examples/bottlerack,
// with zero call-site changes on the protocol side. Three tagged racks run
// behind their own framed pipe servers; the Ring routes Alice's submits by
// rendezvous hashing, fans Bob's sweep out to every rack, and steers his
// reply back to whichever rack holds the bottle via the learned ID→rack
// table. Then one rack is killed to show the cluster keeps serving: the
// Ring ejects it after a few faults and every bottle on the survivors stays
// reachable.
package main

import (
	"context"
	"fmt"
	"log"
	"net"

	"sealedbottle"
	"sealedbottle/internal/attr"
	"sealedbottle/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// rackProc is one "process" of the demo cluster: a tagged rack behind its
// own framed server and pipe listener, like one cmd/bottlerack instance.
type rackProc struct {
	rack *sealedbottle.Rack
	l    *sealedbottle.PipeListener
	srv  *sealedbottle.Server
}

func (p *rackProc) stop() {
	p.l.Close()
	p.srv.Close()
	p.rack.Close()
}

func run() error {
	// 1. Three tagged racks, each the in-process analogue of
	// `bottlerack -tag rN`, and a Ring of couriers over them.
	ctx := context.Background()
	procs := make([]*rackProc, 3)
	ringCfg := sealedbottle.RingConfig{ProbeInterval: -1} // demo drives Probe itself
	for i := range procs {
		rack := sealedbottle.NewRack(sealedbottle.RackConfig{Shards: 4, RackTag: fmt.Sprintf("r%d", i)})
		l := sealedbottle.ListenPipe()
		srv := sealedbottle.NewServer(rack)
		go srv.Serve(l)
		procs[i] = &rackProc{rack: rack, l: l, srv: srv}
		courier, err := sealedbottle.Dial(sealedbottle.CourierConfig{Dialer: func() (net.Conn, error) { return l.Dial() }})
		if err != nil {
			return err
		}
		defer courier.Close()
		ringCfg.Backends = append(ringCfg.Backends, sealedbottle.RingBackend{
			Name: fmt.Sprintf("rack-%d", i), Backend: courier,
		})
	}
	defer func() {
		for _, p := range procs {
			p.stop()
		}
	}()
	ring, err := sealedbottle.NewRing(ringCfg)
	if err != nil {
		return err
	}
	defer ring.Close()

	// 2. Alice racks several search bottles; the ring spreads them over the
	// racks by rendezvous-hashing their request IDs.
	spec := core.RequestSpec{
		Necessary: []attr.Attribute{attr.MustNew("university", "Columbia")},
		Optional: []attr.Attribute{
			attr.MustNew("interest", "basketball"),
			attr.MustNew("interest", "chess"),
			attr.MustNew("interest", "golf"),
		},
		MinOptional: 2,
	}
	initiators := map[string]*core.Initiator{} // tagged ID -> initiator
	perRack := map[string]int{}
	for i := 0; i < 6; i++ {
		alice, err := core.NewInitiator(spec, core.InitiatorConfig{Protocol: core.Protocol1, Origin: "alice"})
		if err != nil {
			return err
		}
		raw, err := alice.Request().Marshal()
		if err != nil {
			return err
		}
		id, err := ring.Submit(ctx, raw)
		if err != nil {
			return err
		}
		initiators[id] = alice
		tag, _ := sealedbottle.SplitTaggedID(id)
		perRack[tag]++
	}
	fmt.Printf("alice racked 6 bottles across the cluster: %v\n", perRack)

	// 3. Bob sweeps once through the ring: the query fans out to all three
	// racks, the matches come back merged, and his replies route to the
	// racks that hold each bottle.
	bob, err := core.NewParticipant(attr.NewProfile(
		attr.MustNew("university", "Columbia"),
		attr.MustNew("interest", "basketball"),
		attr.MustNew("interest", "chess"),
		attr.MustNew("interest", "cooking"),
	), core.ParticipantConfig{ID: "bob", Matcher: core.MatcherConfig{AllowCollisionSkip: true}, MinReplyInterval: 1})
	if err != nil {
		return err
	}
	sweeper, err := sealedbottle.NewSweeper(ring, sealedbottle.SweeperConfig{Participant: bob})
	if err != nil {
		return err
	}
	st, err := sweeper.Tick(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("bob swept the whole cluster in one tick: %d bottles, %d replies posted, %d failed\n",
		st.Swept, st.Replies, st.ReplyErrors)

	// 4. Alice fetches her replies back through the ring — each fetch is
	// steered to the rack named by the ID's tag.
	confirmed := 0
	for id, alice := range initiators {
		for _, r := range sealedbottle.FetchMany(ctx, ring, []string{id})[0].Replies {
			reply, err := core.UnmarshalReply(r)
			if err != nil {
				continue
			}
			if m, _, err := alice.ProcessReply(reply); err == nil && m != nil {
				confirmed++
			}
		}
	}
	fmt.Printf("alice confirmed %d matches\n", confirmed)

	// 5. Kill rack 1. The ring ejects it after a few faults and the
	// survivors keep serving every bottle they hold.
	procs[1].stop()
	for i := 0; i < sealedbottle.DefaultFailThreshold; i++ {
		ring.Probe(ctx)
		_, _ = ring.Sweep(ctx, sealedbottle.SweepQuery{Residues: []core.ResidueSet{
			bob.Matcher().ResidueSet(core.DefaultPrime),
		}})
	}
	for _, h := range ring.Health() {
		fmt.Printf("rack %s: down=%v\n", h.Name, h.Down)
	}
	reachable := 0
	for id := range initiators {
		tag, _ := sealedbottle.SplitTaggedID(id)
		if tag == "r1" {
			continue // lives on the dead rack
		}
		if _, err := ring.Fetch(ctx, id); err == nil {
			reachable++
		}
	}
	fmt.Printf("%d of %d surviving bottles still reachable with rack-1 down\n",
		reachable, len(initiators)-perRack["r1"])

	stats, err := ring.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("cluster stats (survivors): held=%d scanned=%d replies=%d/%d\n",
		stats.Held, stats.Totals.Scanned, stats.Totals.RepliesIn, stats.Totals.RepliesOut)
	return nil
}
