// Quickstart: privacy-preserving friending between two users in a few dozen
// lines. Alice searches for a Columbia-educated basketball or chess player;
// Bob matches, recovers the sealed session key, and both ends derive the same
// secure-channel key — without either profile ever leaving its owner.
package main

import (
	"fmt"
	"log"

	"sealedbottle/internal/attr"
	"sealedbottle/internal/channel"
	"sealedbottle/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Alice describes the person she wants to find: two attributes are
	//    mandatory, and at least two of the three optional interests must be
	//    shared (similarity threshold θ = 4/5).
	spec := core.RequestSpec{
		Necessary: []attr.Attribute{
			attr.MustNew("sex", "male"),
			attr.MustNew("university", "Columbia"),
		},
		Optional: []attr.Attribute{
			attr.MustNew("interest", "basketball"),
			attr.MustNew("interest", "chess"),
			attr.MustNew("interest", "golf"),
		},
		MinOptional: 2,
	}
	alice, err := core.NewInitiator(spec, core.InitiatorConfig{
		Protocol: core.Protocol1,
		Origin:   "alice",
		Note:     []byte("coffee at the student center?"),
	})
	if err != nil {
		return err
	}
	pkg := alice.Request()
	wire, err := pkg.Marshal()
	if err != nil {
		return err
	}
	fmt.Printf("Alice broadcasts a %d-byte request: θ=%.2f, p=%d, %d remainders, no attribute data\n",
		len(wire), pkg.Threshold(), pkg.Prime, pkg.AttributeCount())

	// 2. Bob receives the broadcast. His profile is his own business — it is
	//    only ever hashed locally.
	bobProfile := attr.NewProfile(
		attr.MustNew("sex", "male"),
		attr.MustNew("university", "columbia"), // note: different capitalisation still matches
		attr.MustNew("interest", "Basket Ball"),
		attr.MustNew("interest", "chess"),
		attr.MustNew("interest", "cooking"),
	)
	bob, err := core.NewParticipant(bobProfile, core.ParticipantConfig{
		ID:      "bob",
		Matcher: core.MatcherConfig{AllowCollisionSkip: true},
	})
	if err != nil {
		return err
	}
	result, err := bob.HandleRequest(pkg)
	if err != nil {
		return err
	}
	if !result.Matched {
		return fmt.Errorf("bob unexpectedly did not match")
	}
	fmt.Printf("Bob matches, reads Alice's note %q and replies\n", result.Note)

	// 3. Alice processes the reply: she learns Bob matched and both sides now
	//    share a pairwise channel key derived from (x, y).
	match, reject, err := alice.ProcessReply(result.Reply)
	if err != nil {
		return err
	}
	if reject != core.RejectNone {
		return fmt.Errorf("reply rejected: %v", reject)
	}
	fmt.Printf("Alice confirms the match with %s\n", match.Peer)

	// 4. The secure channel: both ends construct it independently from their
	//    halves of the key exchange and exchange an encrypted message.
	aliceEnd, err := channel.NewWithKey(match.ChannelKey, channel.RoleInitiator, nil)
	if err != nil {
		return err
	}
	bobEnd, err := channel.NewWithKey(result.ChannelKey, channel.RoleResponder, nil)
	if err != nil {
		return err
	}
	frame, err := aliceEnd.Seal([]byte("great — tomorrow at 10?"))
	if err != nil {
		return err
	}
	plaintext, err := bobEnd.Open(frame)
	if err != nil {
		return err
	}
	fmt.Printf("Bob decrypts Alice's first channel message: %q\n", plaintext)
	fmt.Printf("channel fingerprints agree: %v\n", aliceEnd.Fingerprint() == bobEnd.Fingerprint())

	// A bystander with a different profile learns nothing at any step.
	carolProfile := attr.NewProfile(attr.MustNew("interest", "painting"), attr.MustNew("sex", "female"))
	carol, err := core.NewParticipant(carolProfile, core.ParticipantConfig{ID: "carol"})
	if err != nil {
		return err
	}
	carolResult, err := carol.HandleRequest(pkg)
	if err != nil {
		return err
	}
	fmt.Printf("Carol (no match): matched=%v, replies=%v, forwards=%v\n",
		carolResult.Matched, carolResult.Reply != nil, carolResult.Forward)
	return nil
}
