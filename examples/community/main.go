// Community discovery: one request, many matching users, one shared group key
// (Section III-F). The initiator finds everyone above the similarity
// threshold, establishes a pairwise channel with each, and uses its session
// key x as the group key for secure intra-community broadcast — and Protocol 3
// shows how a privacy-conscious member bounds what it risks exposing.
package main

import (
	"fmt"
	"log"

	"sealedbottle/internal/attr"
	"sealedbottle/internal/channel"
	"sealedbottle/internal/core"
	"sealedbottle/internal/crypt"
	"sealedbottle/internal/dataset"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	community := []attr.Attribute{
		attr.MustNew("group", "distributed systems reading club"),
		attr.MustNew("interest", "consensus protocols"),
		attr.MustNew("interest", "formal verification"),
		attr.MustNew("interest", "storage systems"),
	}
	spec := core.RequestSpec{
		Necessary:   community[:1],
		Optional:    community[1:],
		MinOptional: 2,
	}
	leader, err := core.NewInitiator(spec, core.InitiatorConfig{
		Protocol: core.Protocol2, // nobody but the leader learns who is in
		Origin:   "leader",
	})
	if err != nil {
		return err
	}
	pkg := leader.Request()
	fmt.Printf("leader broadcast a community-discovery request (θ=%.2f)\n\n", pkg.Threshold())

	// A ϕ-entropy model over the wider population, used by the Protocol 3
	// member below to bound what it is willing to reveal to the leader.
	corpus := dataset.Generate(dataset.Params{Users: 2000, Seed: 11})
	entropy := corpus.EntropyModel(false)
	for _, a := range community {
		entropy.Observe(a.Header, a.Value)
	}

	members := []struct {
		name     string
		profile  *attr.Profile
		protocol core.Protocol
		phi      float64
	}{
		{
			name: "dora (full member)",
			profile: attr.NewProfile(community[0], community[1], community[2],
				attr.MustNew("interest", "hiking")),
			protocol: core.Protocol2,
		},
		{
			name: "evan (member, privacy budget)",
			profile: attr.NewProfile(community[0], community[1], community[3],
				attr.MustNew("interest", "jazz")),
			protocol: core.Protocol3,
			phi:      64,
		},
		{
			name:     "fred (not a member)",
			profile:  attr.NewProfile(attr.MustNew("interest", "gardening"), attr.MustNew("group", "book club")),
			protocol: core.Protocol2,
		},
	}

	for _, m := range members {
		cfg := core.ParticipantConfig{
			ID:       m.name,
			Protocol: m.protocol,
			Matcher:  core.MatcherConfig{AllowCollisionSkip: true},
		}
		if m.protocol == core.Protocol3 {
			cfg.Entropy = entropy
			cfg.Phi = m.phi
		}
		participant, err := core.NewParticipant(m.profile, cfg)
		if err != nil {
			return err
		}
		res, err := participant.HandleRequest(pkg)
		if err != nil {
			return err
		}
		if res.Reply == nil {
			fmt.Printf("%-32s no reply (not a candidate)\n", m.name)
			continue
		}
		match, reject, err := leader.ProcessReply(res.Reply)
		if err != nil {
			return err
		}
		if reject != core.RejectNone {
			fmt.Printf("%-32s replied but was not a match (%v)\n", m.name, reject)
			continue
		}
		fmt.Printf("%-32s joined the community (pairwise key %v)\n", m.name, match.ChannelKey)
	}

	// Group messaging: the leader's x is the community key. Every confirmed
	// member received x inside the sealed request, so they can all read the
	// group broadcast; outsiders cannot.
	groupLeader, err := channel.NewGroup(leader.GroupKey(), channel.RoleInitiator, nil)
	if err != nil {
		return err
	}
	announcement, err := groupLeader.Seal([]byte("first meeting: thursday 7pm, paper: 'Message in a Sealed Bottle'"))
	if err != nil {
		return err
	}
	memberGroup, err := channel.NewGroup(leader.GroupKey(), channel.RoleResponder, nil)
	if err != nil {
		return err
	}
	plain, err := memberGroup.Open(announcement)
	if err != nil {
		return err
	}
	fmt.Printf("\ngroup broadcast readable by all %d members: %q\n", len(leader.Matches()), plain)

	// An outsider guessing a key cannot read the announcement.
	outsiderKey, err := crypt.NewSessionKey(crypt.DefaultRand())
	if err != nil {
		return err
	}
	outsider, err := channel.NewWithKey(outsiderKey, channel.RoleResponder, nil)
	if err != nil {
		return err
	}
	if _, err := outsider.Open(announcement); err != nil {
		fmt.Println("an outsider with a guessed key cannot read the group broadcast")
	}
	return nil
}
