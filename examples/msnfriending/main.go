// MSN friending: the end-to-end scenario the paper's introduction motivates —
// a decentralized, multi-hop mobile social network where a user searches for
// a matching stranger via relays, with lossy links, mobility, duplicate
// suppression and DoS rate limiting, all without exposing anyone's profile.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"sealedbottle/internal/attr"
	"sealedbottle/internal/core"
	"sealedbottle/internal/dataset"
	"sealedbottle/internal/msn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		nodeCount = 80
		area      = 800.0
		seed      = 42
	)
	sim := msn.NewSimulator(msn.Config{
		Range:            130,
		Latency:          15 * time.Millisecond,
		LatencyJitter:    10 * time.Millisecond,
		LossRate:         0.05,
		DefaultTTL:       10,
		RelayRateLimit:   2 * time.Second,
		MobilityInterval: time.Second,
		Area:             msn.Position{X: area, Y: area},
		Seed:             seed,
	})
	rng := rand.New(rand.NewSource(seed))

	// The profile Alice is looking for.
	target := []attr.Attribute{
		attr.MustNew("interest", "rock climbing"),
		attr.MustNew("interest", "photography"),
		attr.MustNew("interest", "street food"),
		attr.MustNew("city", "shanghai"),
	}
	spec := core.RequestSpec{
		Necessary:   []attr.Attribute{target[3]},
		Optional:    target[:3],
		MinOptional: 2,
	}

	// Build the population from the synthetic corpus; plant three users that
	// genuinely match somewhere in the crowd.
	corpus := dataset.Generate(dataset.Params{Users: nodeCount, Seed: seed})
	planted := map[int]bool{17: true, 42: true, 63: true}
	var alice *msn.FriendingApp
	for i := 0; i < nodeCount; i++ {
		profile := corpus.Users[i].TagProfile()
		if planted[i] {
			profile = attr.NewProfile(append(target, attr.MustNew("interest", fmt.Sprintf("hobby%d", i)))...)
		}
		pos := msn.Position{X: rng.Float64() * area, Y: rng.Float64() * area}
		app, node, err := msn.NewFriendingApp(sim, msn.NodeID(fmt.Sprintf("user%02d", i)), pos, msn.FriendingConfig{
			Profile: profile,
			Participant: core.ParticipantConfig{
				Matcher:             core.MatcherConfig{AllowCollisionSkip: true},
				DiscloseCardinality: true,
			},
		})
		if err != nil {
			return err
		}
		// Half the population wanders around at walking speed.
		if i%2 == 0 {
			if err := sim.RandomWaypoint(node.ID, 1.4); err != nil {
				return err
			}
		}
		if i == 0 {
			alice = app
		}
	}

	fmt.Printf("%d nodes over a %.0f×%.0f m area, radio range %.0f m\n",
		nodeCount, area, area, sim.Config().Range)

	reqID, err := alice.StartSearch(spec, msn.SearchOptions{
		Protocol: core.Protocol1,
		Note:     []byte("weekend climbing trip — interested?"),
	})
	if err != nil {
		return err
	}
	fmt.Printf("user00 broadcast request %s (θ=%.2f)\n\n", reqID[:8], spec.Threshold())

	// Let the network run for a while (mobility keeps generating events, so
	// bound by simulated time rather than draining the queue).
	sim.RunFor(30 * time.Second)

	stats := sim.Stats()
	fmt.Printf("after 30 s of simulated time: %d transmissions, %d delivered, %d lost, %d duplicates, %d rate-limited\n",
		stats.Sent, stats.Delivered, stats.Lost, stats.Duplicates, stats.RateLimited)

	matches := alice.Matches()[reqID]
	fmt.Printf("\nalice found %d matching user(s):\n", len(matches))
	for _, m := range matches {
		fmt.Printf("  %-8s shared-attribute cardinality %d, channel key %v\n", m.Peer, m.Cardinality, m.ChannelKey)
	}
	fmt.Println("\nrelay users that did not match only ever saw remainders and ciphertext;")
	fmt.Println("matching users verified the match locally (Protocol 1) and replied through the reverse path.")
	return nil
}
