// Package sealedbottle is a from-scratch Go reproduction of "Message in a
// Sealed Bottle: Privacy Preserving Friending in Social Networks" (Zhang &
// Li, ICDCS 2013): symmetric-cryptography-only private profile matching and
// secure channel establishment for decentralized mobile social networks.
//
// The root package is the public SDK (sealedbottle.go): one canonical
// context-first Backend interface — Submit/SubmitBatch/Sweep/Reply/
// ReplyBatch/Fetch/FetchBatch/Remove/Stats/Close — implemented by the
// in-process Rack, the wire Courier and the cluster Ring alike, plus the
// framed server, the candidate-side Sweeper, and typed error sentinels that
// survive TCP via one-byte wire codes. External programs embed a rack or
// dial a cluster through this surface alone; api_golden_test.go guards it
// against accidental breaking changes.
//
// The implementation lives under internal/ (core mechanism, crypto
// substrate, hexagonal-lattice location hashing, bottle-rack rendezvous
// broker with its write-ahead-log durability substrate in
// internal/broker/wal and its dual lock-step/multiplexed wire transport,
// the courier client SDK and multi-rack cluster ring in internal/client,
// MSN simulator, dataset generator, asymmetric baselines, adversary
// harness, cost model and experiment generators), with runnable entry
// points under cmd/ and examples/. The repository-level benchmarks in
// bench_test.go regenerate every table and figure of the paper's evaluation
// and track the broker's, transport's and durability subsystem's
// throughput. See README.md for the package map and quickstart,
// docs/PROTOCOL.md for the complete wire and on-disk format specification
// (including the error-code table and cancellation semantics), and
// docs/ARCHITECTURE.md for the layer map and design rationale.
package sealedbottle
